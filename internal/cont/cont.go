// Package cont implements first-class one-shot continuations, the
// process-saving mechanism (à la Wand) on which every MP client in the
// paper is built.
//
// SML/NJ continuations are heap-allocated and in principle multi-shot.  Go
// cannot re-enter a stack frame, so a continuation here is a parked
// goroutine plus a resume channel: capturing is cheap (one goroutine, one
// channel — the moral equivalent of "callcc just allocates a closure") and
// throwing hands control, together with the thrower's proc baton, to the
// parked goroutine.  Every continuation in the paper's client code (the
// thread packages of Figs. 1 and 3, the selective-communication protocol of
// Fig. 5, and CML) is invoked at most once, so one-shot semantics suffice;
// a second throw to the same continuation panics.
//
// Control-flow contract:
//
//   - Callcc(body) runs body on the current proc.  If body returns a value
//     v, Callcc returns v (the implicit throw of SML semantics).  If some
//     proc later throws v to the captured continuation, Callcc returns v on
//     *that* proc: the baton travels with control.
//   - Throw never returns.  It terminates the calling goroutine by
//     panicking with a private sentinel that the package's own goroutine
//     roots recover; user defer statements on the abandoned path do run.
//
// A goroutine parked in Callcc whose continuation is never thrown is
// leaked.  SML/NJ garbage-collects unreachable threads; Go cannot, so
// clients must resume or deliberately abandon (process-exit) every captured
// continuation.  This substitution is recorded in DESIGN.md.
package cont

import (
	"sync/atomic"

	"repro/internal/gls"
)

// Unit is SML's unit type; a Cont[Unit] is the paper's `unit cont`.
type Unit struct{}

type msg[T any] struct {
	v     T
	baton any
}

// Cont is a one-shot first-class continuation carrying a value of type T.
type Cont[T any] struct {
	resume chan msg[T]
	used   atomic.Bool
}

// Used reports whether the continuation has already been resumed.
func (k *Cont[T]) Used() bool { return k.used.Load() }

// exitSignal unwinds a goroutine abandoned by Throw, Exit or proc release.
type exitSignal struct{}

// Callcc captures the current continuation as k and evaluates body(k),
// mirroring SML's `callcc (fn k => body)`.  It must be called by a
// goroutine holding a proc baton (i.e. from inside Platform.Run).
func Callcc[T any](body func(k *Cont[T]) T) T {
	baton, ok := gls.Get()
	if !ok {
		panic("cont: Callcc invoked outside the MP platform")
	}
	k := &Cont[T]{resume: make(chan msg[T], 1)}
	go func() {
		gls.Set(baton)
		defer func() {
			gls.Del()
			if r := recover(); r != nil {
				if _, ok := r.(exitSignal); ok {
					return
				}
				panic(r)
			}
		}()
		v := body(k)
		// Falling off the body is SML's implicit throw to k.
		deliver(k, v)
	}()
	m := <-k.resume
	gls.Set(m.baton)
	return m.v
}

func deliver[T any](k *Cont[T], v T) {
	if !k.used.CompareAndSwap(false, true) {
		panic("cont: continuation resumed more than once")
	}
	baton, _ := gls.Get()
	k.resume <- msg[T]{v, baton}
}

// Throw resumes k with v, transferring the current proc to the resumed
// code.  It never returns; the calling goroutine is unwound.
func Throw[T any](k *Cont[T], v T) {
	deliver(k, v)
	panic(exitSignal{})
}

// Exit unwinds the current goroutine without resuming anything.  The proc
// layer uses it to implement release_proc, whose ML type is `unit -> 'a`
// precisely because it never returns.
func Exit() {
	panic(exitSignal{})
}

// IsExit reports whether a recovered panic value is the package's private
// unwind sentinel.  Goroutine roots created outside this package (the
// platform's root-proc wrapper) use it to absorb Throw/Exit unwinds.
func IsExit(r any) bool {
	_, ok := r.(exitSignal)
	return ok
}

// Start resumes k with v on a fresh goroutine whose baton is b.  The proc
// layer uses it to set an acquired proc executing a client continuation
// (paper §3.1: "an existing proc can start a new proc executing in
// parallel by invoking acquire_proc with the continuation to be executed").
func Start[T any](k *Cont[T], v T, b any) {
	go func() {
		gls.Set(b)
		deliver(k, v)
		gls.Del()
	}()
}
