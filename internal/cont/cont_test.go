package cont

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/gls"
)

// withBaton runs f on a goroutine carrying a dummy baton, simulating code
// running on a proc, and waits for the whole continuation web to settle.
func withBaton(t *testing.T, f func()) {
	t.Helper()
	done := make(chan any, 1)
	go func() {
		gls.Set("test-baton")
		defer func() {
			gls.Del()
			done <- recover()
		}()
		f()
	}()
	if r := <-done; r != nil && !IsExit(r) {
		t.Fatalf("panic: %v", r)
	}
}

func TestCallccImplicitReturn(t *testing.T) {
	withBaton(t, func() {
		v := Callcc(func(k *Cont[int]) int { return 41 + 1 })
		if v != 42 {
			t.Errorf("Callcc = %d, want 42", v)
		}
	})
}

func TestCallccThrowFromBody(t *testing.T) {
	withBaton(t, func() {
		v := Callcc(func(k *Cont[string]) string {
			Throw(k, "thrown")
			return "unreachable" // Throw never returns
		})
		if v != "thrown" {
			t.Errorf("Callcc = %q, want thrown", v)
		}
	})
}

func TestThrowAcrossCaptures(t *testing.T) {
	// Capture a continuation and throw to it from a nested continuation
	// body — the cross-context control transfer at the heart of Fig. 3's
	// dispatch.  The nested body's own continuation is deliberately
	// abandoned, as dispatch abandons the proc's previous thread.
	withBaton(t, func() {
		got := Callcc(func(k *Cont[int]) int {
			Callcc(func(j *Cont[Unit]) Unit {
				Throw(k, 10)
				return Unit{}
			})
			return -1 // parked forever on j; never runs
		})
		if got != 10 {
			t.Errorf("Callcc = %d, want 10", got)
		}
	})
}

func TestOneShotEnforced(t *testing.T) {
	withBaton(t, func() {
		var saved *Cont[int]
		v := Callcc(func(k *Cont[int]) int {
			saved = k
			Throw(k, 1)
			return 0
		})
		if v != 1 {
			t.Fatalf("first throw delivered %d, want 1", v)
		}
		caught := make(chan any, 1)
		Callcc(func(j *Cont[Unit]) Unit {
			func() {
				defer func() { caught <- recover() }()
				Throw(saved, 2)
			}()
			return Unit{}
		})
		r := <-caught
		if r == nil {
			t.Error("second throw did not panic")
		} else if IsExit(r) {
			t.Error("second throw unwound instead of reporting reuse")
		}
	})
}

func TestUsedFlag(t *testing.T) {
	withBaton(t, func() {
		var saved *Cont[int]
		Callcc(func(k *Cont[int]) int { saved = k; return 0 })
		if !saved.Used() {
			t.Error("implicitly returned continuation not marked used")
		}
	})
}

func TestBatonTravelsWithThrow(t *testing.T) {
	// A continuation captured under baton A and thrown under baton B must
	// resume observing baton B: "the datum follows control".
	resumed := make(chan any, 1)
	ready := make(chan *Cont[Unit], 1)
	go func() {
		gls.Set("proc-A")
		defer func() { recover(); gls.Del() }()
		Callcc(func(k *Cont[Unit]) Unit {
			ready <- k
			Exit() // abandon this body; k stays parked
			return Unit{}
		})
		b, _ := gls.Get()
		resumed <- b
	}()
	k := <-ready
	go func() {
		gls.Set("proc-B")
		defer func() { recover(); gls.Del() }()
		Throw(k, Unit{})
	}()
	if b := <-resumed; b != "proc-B" {
		t.Fatalf("resumed baton = %v, want proc-B", b)
	}
}

func TestCallccOutsidePlatformPanics(t *testing.T) {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Callcc(func(k *Cont[int]) int { return 0 })
	}()
	if r := <-done; r == nil {
		t.Fatal("Callcc without a baton did not panic")
	}
}

func TestDeepNesting(t *testing.T) {
	withBaton(t, func() {
		// A chain of nested callccs, each incrementing; exercises goroutine
		// hand-off depth.
		sum := 0
		for i := 0; i < 100; i++ {
			sum += Callcc(func(k *Cont[int]) int { Throw(k, 1); return 0 })
		}
		if sum != 100 {
			t.Errorf("sum = %d, want 100", sum)
		}
	})
}

func BenchmarkCallccThrow(b *testing.B) {
	done := make(chan struct{})
	go func() {
		gls.Set("bench")
		defer gls.Del()
		for i := 0; i < b.N; i++ {
			Callcc(func(k *Cont[int]) int { Throw(k, i); return 0 })
		}
		close(done)
	}()
	<-done
}

func BenchmarkCallccReturn(b *testing.B) {
	done := make(chan struct{})
	go func() {
		gls.Set("bench")
		defer gls.Del()
		for i := 0; i < b.N; i++ {
			Callcc(func(k *Cont[int]) int { return i })
		}
		close(done)
	}()
	<-done
}

func TestManyConcurrentContinuationWebs(t *testing.T) {
	// Many independent goroutine "procs", each running deep chains of
	// callcc/throw concurrently: exercises the handoff protocol and gls
	// hygiene under parallelism.
	const webs = 16
	done := make(chan int, webs)
	for w := 0; w < webs; w++ {
		w := w
		go func() {
			gls.Set(w)
			defer gls.Del()
			sum := 0
			for i := 0; i < 200; i++ {
				sum += Callcc(func(k *Cont[int]) int { Throw(k, 1); return 0 })
			}
			done <- sum
		}()
	}
	for w := 0; w < webs; w++ {
		if got := <-done; got != 200 {
			t.Fatalf("web summed %d, want 200", got)
		}
	}
}

func TestBatonNotLeakedAfterWebs(t *testing.T) {
	before := gls.Len()
	doneCh := make(chan struct{})
	go func() {
		gls.Set("w")
		defer gls.Del()
		for i := 0; i < 50; i++ {
			Callcc(func(k *Cont[int]) int { Throw(k, i); return 0 })
		}
		close(doneCh)
	}()
	<-doneCh
	// Body goroutines clean their entries as they exit; allow a moment
	// for the last few deferred Dels.
	deadline := time.Now().Add(2 * time.Second)
	for gls.Len() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if gls.Len() > before {
		t.Fatalf("gls entries leaked: %d -> %d", before, gls.Len())
	}
}
