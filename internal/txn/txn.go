// Package txn is a small transactional-memory client in the spirit of
// the transaction system the paper reports being built on ML Threads
// (Wing, Faehndrich, Morrisett & Nettles, "Extensions to Standard ML to
// support transactions").  It provides transactional variables (TVar)
// and an Atomically combinator with optimistic concurrency control:
// reads are versioned, writes are buffered, and commit validates the
// read set under write locks acquired in a global order, retrying the
// whole transaction on conflict.
//
// Everything is built on the MP surface: per-TVar mutex locks for the
// short commit-time critical sections and the scheduler's Yield for
// backoff between retries.
package txn

import (
	"errors"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/spinlock"
)

// ErrAborted is returned by Atomically when the transaction body called
// Abort.
var ErrAborted = errors.New("txn: aborted")

// Scheduler is the slice of the thread package transactions need for
// backoff; threads.System implements it.
type Scheduler interface {
	Yield()
}

var nextID atomic.Uint64

// meta is the untyped core of a TVar: identity, lock, and version.
// The version is read atomically by validation, which must never block
// while the validator holds other locks (that is how commit stays
// deadlock-free); wlocked marks a commit in progress on the variable.
type meta struct {
	id      uint64
	lk      spinlock.Lock
	version atomic.Uint64
	wlocked atomic.Bool
}

// tvar is the untyped view the commit protocol uses.
type tvar interface {
	base() *meta
	store(v any)
}

// TVar is a transactional variable holding a T.
type TVar[T any] struct {
	m   meta
	val T // guarded by m.lk
}

// NewTVar returns a transactional variable with an initial value.
func NewTVar[T any](initial T) *TVar[T] {
	v := &TVar[T]{val: initial}
	v.m.id = nextID.Add(1)
	v.m.lk = core.NewMutexLock()
	return v
}

func (v *TVar[T]) base() *meta { return &v.m }
func (v *TVar[T]) store(x any) { v.val = x.(T) }

// Value reads the variable outside any transaction (still versioned and
// locked, so it observes a committed state).
func (v *TVar[T]) Value() T {
	v.m.lk.Lock()
	x := v.val
	v.m.lk.Unlock()
	return x
}

// Tx is an in-flight transaction: a read set of observed versions and a
// buffered write set.
type Tx struct {
	reads   map[*meta]uint64
	writes  map[*meta]any
	objs    map[*meta]tvar
	aborted bool
}

// Abort abandons the transaction; Atomically returns ErrAborted without
// applying any writes.
func (tx *Tx) Abort() { tx.aborted = true }

// Read observes a TVar inside a transaction, seeing the transaction's
// own buffered write if there is one.
func Read[T any](tx *Tx, v *TVar[T]) T {
	m := v.base()
	if w, ok := tx.writes[m]; ok {
		return w.(T)
	}
	m.lk.Lock()
	val, ver := v.val, m.version.Load()
	m.lk.Unlock()
	if old, ok := tx.reads[m]; ok && old != ver {
		// Inconsistent snapshot: remember the newest version; validation
		// will fail and the transaction will retry.
		tx.reads[m] = ^uint64(0)
		return val
	}
	tx.reads[m] = ver
	tx.objs[m] = v
	return val
}

// Write buffers a store to a TVar inside a transaction.
func Write[T any](tx *Tx, v *TVar[T], x T) {
	m := v.base()
	tx.writes[m] = x
	tx.objs[m] = v
}

// Atomically runs body as a transaction, retrying on conflicts until it
// commits or aborts.  The returned error is ErrAborted if body called
// Abort, or whatever error body returned (in which case nothing is
// applied).
func Atomically(s Scheduler, body func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Tx{
			reads:  make(map[*meta]uint64),
			writes: make(map[*meta]any),
			objs:   make(map[*meta]tvar),
		}
		err := body(tx)
		if tx.aborted {
			return ErrAborted
		}
		if err != nil {
			return err
		}
		if tx.commit() {
			return nil
		}
		// Conflict: back off and retry the whole body.
		if s != nil {
			s.Yield()
		}
	}
}

// commit validates the read set and applies the write set under the
// write locks, acquired in id order to avoid deadlock.
func (tx *Tx) commit() bool {
	// Collect and sort the write set by TVar id.
	locks := make([]*meta, 0, len(tx.writes))
	for m := range tx.writes {
		locks = append(locks, m)
	}
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && locks[j].id < locks[j-1].id; j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	for _, m := range locks {
		m.lk.Lock()
		m.wlocked.Store(true)
	}
	// Validate: every read version must still be current.  A TVar both
	// read and written is validated under its (already held) write lock;
	// read-only TVars are checked without blocking — a variable that is
	// write-locked by a concurrent commit counts as a conflict.  Never
	// blocking here is what keeps commit deadlock-free.
	ok := true
	for m, ver := range tx.reads {
		if _, writing := tx.writes[m]; writing {
			if m.version.Load() != ver {
				ok = false
				break
			}
			continue
		}
		if m.wlocked.Load() || m.version.Load() != ver {
			ok = false
			break
		}
	}
	if ok {
		for _, m := range locks {
			tx.objs[m].store(tx.writes[m])
			m.version.Add(1)
		}
	}
	for i := len(locks) - 1; i >= 0; i-- {
		locks[i].wlocked.Store(false)
		locks[i].lk.Unlock()
	}
	return ok
}
