package txn

import (
	"errors"
	"testing"

	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

func runSys(procs int, f func(s *threads.System)) {
	s := threads.New(proc.New(procs), threads.Options{})
	s.Run(func() { f(s) })
}

func TestReadWriteCommit(t *testing.T) {
	runSys(1, func(s *threads.System) {
		v := NewTVar(10)
		err := Atomically(s, func(tx *Tx) error {
			x := Read(tx, v)
			Write(tx, v, x+5)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.Value() != 15 {
			t.Fatalf("value = %d, want 15", v.Value())
		}
	})
}

func TestReadYourOwnWrites(t *testing.T) {
	runSys(1, func(s *threads.System) {
		v := NewTVar(1)
		Atomically(s, func(tx *Tx) error {
			Write(tx, v, 2)
			if Read(tx, v) != 2 {
				t.Error("transaction does not see its own write")
			}
			return nil
		})
	})
}

func TestAbortDiscardsWrites(t *testing.T) {
	runSys(1, func(s *threads.System) {
		v := NewTVar(1)
		err := Atomically(s, func(tx *Tx) error {
			Write(tx, v, 99)
			tx.Abort()
			return nil
		})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		if v.Value() != 1 {
			t.Fatalf("aborted write applied: %d", v.Value())
		}
	})
}

func TestBodyErrorDiscardsWrites(t *testing.T) {
	runSys(1, func(s *threads.System) {
		v := NewTVar(1)
		boom := errors.New("boom")
		err := Atomically(s, func(tx *Tx) error {
			Write(tx, v, 99)
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
		if v.Value() != 1 {
			t.Fatalf("failed transaction applied: %d", v.Value())
		}
	})
}

func TestCountersUnderContention(t *testing.T) {
	runSys(4, func(s *threads.System) {
		counter := NewTVar(0)
		const threadsN, incs = 20, 50
		wg := syncx.NewWaitGroup(s, threadsN)
		for i := 0; i < threadsN; i++ {
			s.Fork(func() {
				for j := 0; j < incs; j++ {
					Atomically(s, func(tx *Tx) error {
						Write(tx, counter, Read(tx, counter)+1)
						return nil
					})
				}
				wg.Done()
			})
		}
		wg.Wait()
		if counter.Value() != threadsN*incs {
			t.Fatalf("counter = %d, want %d (lost updates)", counter.Value(), threadsN*incs)
		}
	})
}

func TestTransfersPreserveTotal(t *testing.T) {
	runSys(4, func(s *threads.System) {
		const accounts = 6
		vars := make([]*TVar[int], accounts)
		for i := range vars {
			vars[i] = NewTVar(100)
		}
		wg := syncx.NewWaitGroup(s, 8)
		for w := 0; w < 8; w++ {
			w := w
			s.Fork(func() {
				for i := 0; i < 100; i++ {
					from := (w + i) % accounts
					to := (w + i + 1 + i%3) % accounts
					if from == to {
						continue
					}
					Atomically(s, func(tx *Tx) error {
						f := Read(tx, vars[from])
						if f < 10 {
							tx.Abort()
							return nil
						}
						Write(tx, vars[from], f-10)
						Write(tx, vars[to], Read(tx, vars[to])+10)
						return nil
					})
				}
				wg.Done()
			})
		}
		wg.Wait()
		total := 0
		for _, v := range vars {
			total += v.Value()
		}
		if total != accounts*100 {
			t.Fatalf("total = %d, want %d (atomicity violated)", total, accounts*100)
		}
	})
}

func TestWriteSkewPrevented(t *testing.T) {
	// The classic anomaly: two transactions each read both vars and
	// write one; serializability demands the invariant x+y >= 1 is never
	// violated by a concurrent pair both seeing (1,1).
	for round := 0; round < 30; round++ {
		runSys(2, func(s *threads.System) {
			x, y := NewTVar(1), NewTVar(1)
			wg := syncx.NewWaitGroup(s, 2)
			dec := func(a, b *TVar[int]) {
				Atomically(s, func(tx *Tx) error {
					if Read(tx, a)+Read(tx, b) >= 2 {
						Write(tx, a, Read(tx, a)-1)
					}
					return nil
				})
				wg.Done()
			}
			s.Fork(func() { dec(x, y) })
			s.Fork(func() { dec(y, x) })
			wg.Wait()
			if x.Value()+y.Value() < 1 {
				t.Fatalf("write skew: x=%d y=%d", x.Value(), y.Value())
			}
		})
	}
}

func TestSnapshotConsistencyRetries(t *testing.T) {
	// A transaction that observes two variables must observe a consistent
	// pair even while a writer keeps them equal.
	runSys(4, func(s *threads.System) {
		a, b := NewTVar(0), NewTVar(0)
		stopped := NewTVar(false)
		wg := syncx.NewWaitGroup(s, 2)
		s.Fork(func() { // writer keeps a == b
			for i := 1; i <= 200; i++ {
				Atomically(s, func(tx *Tx) error {
					Write(tx, a, i)
					Write(tx, b, i)
					return nil
				})
			}
			Atomically(s, func(tx *Tx) error {
				Write(tx, stopped, true)
				return nil
			})
			wg.Done()
		})
		s.Fork(func() { // reader demands consistent pairs
			for {
				var av, bv int
				var done bool
				Atomically(s, func(tx *Tx) error {
					av = Read(tx, a)
					bv = Read(tx, b)
					done = Read(tx, stopped)
					return nil
				})
				if av != bv {
					t.Errorf("inconsistent snapshot: a=%d b=%d", av, bv)
					break
				}
				if done {
					break
				}
				s.Yield()
			}
			wg.Done()
		})
		wg.Wait()
	})
}
