// Quickstart: the MP platform in one page — procs, locks, and a thread
// package built from continuations (paper Figs. 2 and 3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

func main() {
	// A platform provides at most MaxProcs procs — the paper's analogue of
	// the physical processors the OS grants an SML/NJ image.
	nprocs := runtime.GOMAXPROCS(0)
	pl := proc.New(nprocs)

	// The thread functor from Fig. 3: a ready queue of first-class
	// continuations guarded by a mutex lock, multiplexed over the procs.
	sys := threads.New(pl, threads.Options{})

	fmt.Printf("quickstart: %d procs\n", nprocs)

	sys.Run(func() {
		// Fork ten threads; each yields once (handing its continuation to
		// the ready queue) and then increments a lock-protected counter.
		counter := 0
		mu := syncx.NewMutex(sys)
		wg := syncx.NewWaitGroup(sys, 10)
		for i := 0; i < 10; i++ {
			i := i
			sys.Fork(func() {
				fmt.Printf("  thread %d running on proc %d\n", sys.ID(), proc.Self())
				sys.Yield() // give the processor to another thread
				mu.Lock()
				counter++
				mu.Unlock()
				_ = i
				wg.Done()
			})
		}
		wg.Wait()
		fmt.Printf("all threads done; counter = %d\n", counter)
	})
	// Run returns when every proc has been released: the computation has
	// quiesced.
	st := sys.Stats()
	fmt.Printf("scheduler: %d forks, %d yields, %d dispatches\n",
		st.Forks, st.Yields, st.Dispatches)
}
