// Bank: concurrent accounts with reader/writer locks and semaphores
// synthesized from MP mutex locks and continuations (paper §3.3) — a nod
// to the transaction system the paper reports being built on ML Threads.
// Auditor threads take consistent read snapshots while teller threads
// transfer money under write locks; the invariant is that the total
// balance never changes.
//
//	go run ./examples/bank [-accounts 8] [-transfers 2000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

func main() {
	nAccounts := flag.Int("accounts", 8, "number of accounts")
	nTransfers := flag.Int("transfers", 2000, "transfers per teller")
	flag.Parse()

	sys := threads.New(proc.New(runtime.GOMAXPROCS(0)), threads.Options{})

	const initial = 1000
	balance := make([]int, *nAccounts)
	for i := range balance {
		balance[i] = initial
	}
	want := initial * *nAccounts

	audits, violations := 0, 0

	sys.Run(func() {
		lock := syncx.NewRWLock(sys)
		tellersDone := syncx.NewWaitGroup(sys, 4)
		stop := false

		// Tellers move money between random accounts under the write lock.
		for t := 0; t < 4; t++ {
			t := t
			sys.Fork(func() {
				rng := rand.New(rand.NewSource(int64(t)))
				for i := 0; i < *nTransfers; i++ {
					from, to := rng.Intn(*nAccounts), rng.Intn(*nAccounts)
					amount := rng.Intn(50)
					lock.Lock()
					if balance[from] >= amount {
						balance[from] -= amount
						balance[to] += amount
					}
					lock.Unlock()
					if i%64 == 0 {
						sys.Yield()
					}
				}
				tellersDone.Done()
			})
		}

		// Auditors snapshot the books under the read lock; several may
		// audit at once, but never concurrently with a transfer.
		auditorsDone := syncx.NewWaitGroup(sys, 2)
		for a := 0; a < 2; a++ {
			sys.Fork(func() {
				for {
					lock.RLock()
					total := 0
					for _, b := range balance {
						total += b
					}
					done := stop
					lock.RUnlock()
					audits++
					if total != want {
						violations++
					}
					if done {
						break
					}
					sys.Yield()
				}
				auditorsDone.Done()
			})
		}

		tellersDone.Wait()
		lock.Lock()
		stop = true
		lock.Unlock()
		auditorsDone.Wait()
	})

	total := 0
	for _, b := range balance {
		total += b
	}
	fmt.Printf("bank: %d accounts, %d transfers by 4 tellers, %d audits\n",
		*nAccounts, 4**nTransfers, audits)
	fmt.Printf("final total %d (want %d), %d consistency violations\n",
		total, want, violations)
	if total != want || violations > 0 {
		panic("invariant violated")
	}
}
