// Cmlpipe: Concurrent ML events on the MP platform — the CML prototype
// the paper reports building on MP, exercised end to end.  A dispatcher
// thread multiplexes two request channels with Choose/Wrap; each request
// carries a write-once IVar for its reply; clients collect replies by
// synchronizing on the IVars' read events.
//
//	go run ./examples/cmlpipe
package main

import (
	"fmt"
	"runtime"

	"repro/internal/cml"
	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

type request struct {
	n     int
	reply *cml.IVar[int]
}

// job is a request tagged with the operation the dispatcher chose.
type job struct {
	req request
	op  string
}

func main() {
	sys := threads.New(proc.New(runtime.GOMAXPROCS(0)), threads.Options{})

	const perKind = 8
	var results []string

	sys.Run(func() {
		squares := cml.NewChan[request]()
		cubes := cml.NewChan[request]()

		// Dispatcher: whichever request channel is ready first wins the
		// choice; Wrap tags the winner so one Sync serves both protocols.
		sys.Fork(func() {
			squareEvt := cml.Wrap(squares.RecvEvt(), func(r request) job { return job{r, "square"} })
			cubeEvt := cml.Wrap(cubes.RecvEvt(), func(r request) job { return job{r, "cube"} })
			for served := 0; served < 2*perKind; served++ {
				j := cml.Sync(sys, cml.Choose(squareEvt, cubeEvt))
				switch j.op {
				case "square":
					j.req.reply.Put(sys, j.req.n*j.req.n)
				case "cube":
					j.req.reply.Put(sys, j.req.n*j.req.n*j.req.n)
				}
			}
		})

		// Clients: send requests on both channels, then read every reply
		// through its IVar event (a Guard defers building the read event
		// until the synchronization happens).
		var replies []*cml.IVar[int]
		var kinds []string
		wg := syncx.NewWaitGroup(sys, 2*perKind)
		for i := 1; i <= perKind; i++ {
			i := i
			sq := cml.NewIVar[int]()
			cu := cml.NewIVar[int]()
			replies = append(replies, sq, cu)
			kinds = append(kinds, "square", "cube")
			sys.Fork(func() {
				cml.Sync(sys, squares.SendEvt(request{n: i, reply: sq}))
				wg.Done()
			})
			sys.Fork(func() {
				cml.Sync(sys, cubes.SendEvt(request{n: i, reply: cu}))
				wg.Done()
			})
		}
		wg.Wait()

		for i, iv := range replies {
			ev := cml.Guard(func() cml.Event[int] { return iv.ReadEvt() })
			v := cml.Sync(sys, ev)
			results = append(results, fmt.Sprintf("%s(%d) = %d", kinds[i], i/2+1, v))
		}
	})

	fmt.Println("cmlpipe: dispatcher served", len(results), "requests via Choose/Wrap/Guard")
	for _, r := range results {
		fmt.Println(" ", r)
	}
}
