// Vmdemo: the SML/NJ generic machine model (paper §5) in action — build
// a small program with the code-generator API, disassemble it, and run
// it on the VM with its heap, multi-shot continuations and proc-datum
// register.
//
// The program computes triangular numbers by looping through a captured
// continuation kept in a heap cell: each throw restores the registers
// (only heap state survives), which is exactly why Figure 1 keeps its
// thread state in ref cells.
//
//	go run ./examples/vmdemo
package main

import (
	"fmt"

	"repro/internal/mlheap"
	"repro/internal/vm"
)

func main() {
	const (
		rBox = 0 // heap cell: [k, i, sum]
		rK   = 1
		rT1  = 2
		rT2  = 3
		rSum = 4
		rLim = 5
		rOne = 6
	)
	b := vm.NewBuilder()
	b.LoadInt(rOne, 1)
	b.LoadInt(rLim, 10)
	// box = (nil, 0, 0)
	b.LoadInt(rT1, 0)
	b.LoadInt(rT2, 0)
	b.Move(rSum, rT1)
	b.Record(rBox, rT1, 3)
	b.Capture(rK, "loop")
	b.Update(rBox, 0, rK)
	b.LoadInt(rT1, 0)
	b.Throw(rK, rT1)
	b.Label("loop")
	// i++, sum += i; registers were reset by the throw, so reload all
	// state from the box.
	b.Select(rT1, rBox, 1)
	b.Add(rT1, rT1, rOne)
	b.Update(rBox, 1, rT1)
	b.Select(rSum, rBox, 2)
	b.Add(rSum, rSum, rT1)
	b.Update(rBox, 2, rSum)
	b.Less(rT2, rT1, rLim)
	b.BranchIf(rT2, "again")
	b.Halt(rSum)
	b.Label("again")
	b.Select(rK, rBox, 0) // the SAME continuation, thrown again: multi-shot
	b.LoadInt(rT1, 0)
	b.Throw(rK, rT1)

	prog := b.MustBuild()
	fmt.Println("generic-machine code:")
	fmt.Print(prog.Disassemble())

	m := vm.NewMachine(mlheap.Config{
		NurseryWords: 4096, SemiWords: 1 << 16, ChunkWords: 64, Procs: 1,
	}, 1)
	p := m.NewProc(prog)
	p.SetDatum(mlheap.Int(7)) // the dedicated per-proc datum register
	v, err := p.Run(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nresult: sum(1..10) = %d after %d instructions\n", v.Int(), p.Steps())
	fmt.Println("the continuation was thrown 10 times — multi-shot, as in SML/NJ")
}
