// Mlgc: the §5 memory story end to end — raw MP procs (acquire_proc /
// release_proc, no thread package) allocating ML-style records from a
// shared two-generation copying heap with per-proc allocation regions,
// chunk stealing, and sequential stop-the-world collections synchronized
// at clean points.
//
//	go run ./examples/mlgc [-procs 4] [-cells 30000]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/mlheap"
	"repro/internal/proc"
)

func main() {
	nprocs := flag.Int("procs", runtime.GOMAXPROCS(0), "procs to acquire")
	cells := flag.Int("cells", 30000, "list cells to allocate per proc")
	flag.Parse()

	world := gcsync.NewWorld(mlheap.Config{
		NurseryWords: 16 * 1024, // small on purpose: force collections
		SemiWords:    1 << 20,
		ChunkWords:   256,
		Procs:        *nprocs,
	})
	heads := make([]mlheap.Value, *nprocs)
	for i := range heads {
		world.AddRoot(&heads[i])
	}

	build := func(me int) {
		// Attach under the platform proc id so a shared tracer would put
		// GC spans on this proc's track.
		a := world.AttachProc(proc.Self())
		defer a.Detach()
		for i := 0; i < *cells; i++ {
			// cons(i, heads[me]) — both the int and the tail pointer are
			// protected across any collection inside Record.
			heads[me] = a.Record(mlheap.Int(int64(i)), heads[me])
		}
	}

	// Acquire procs the §3.1 way: the root proc starts the workers by
	// handing acquire_proc a continuation for each.
	pl := proc.New(*nprocs)
	pl.Run(func() {
		for w := 1; w < *nprocs; w++ {
			w := w
			cont.Callcc(func(k *core.UnitCont) core.Unit {
				if err := pl.Acquire(proc.PS{K: k, Datum: w}); err != nil {
					panic(err) // the pool is sized to fit
				}
				// Still on the previous proc: build this worker's list,
				// then release the proc.
				build(w - 1)
				pl.Release()
				return core.Unit{}
			})
		}
		// The last worker runs on the final acquired proc.
		build(*nprocs - 1)
	}, 0)

	// Verify every list survived the collections intact.
	h := world.Heap()
	for p := 0; p < *nprocs; p++ {
		v := heads[p]
		for i := *cells - 1; i >= 0; i-- {
			if h.Get(v, 0).Int() != int64(i) {
				panic(fmt.Sprintf("proc %d: cell %d corrupted", p, i))
			}
			v = h.Get(v, 1)
		}
	}

	st := h.Stats()
	fmt.Printf("mlgc: %d procs x %d cells\n", *nprocs, *cells)
	fmt.Printf("  allocated:   %d words\n", st.AllocatedWords)
	fmt.Printf("  collections: %d minor, %d major\n", st.MinorGCs, st.MajorGCs)
	fmt.Printf("  copied:      %d words\n", st.CopiedWords)
	fmt.Printf("  live:        %d words\n", st.LiveWords)
	fmt.Printf("  chunk steals: %d\n", st.Steals)
	fmt.Println("all lists intact after stop-the-world collections")
}
