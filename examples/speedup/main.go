// Speedup: measure native self-relative speedup of the mm benchmark on
// this host, a miniature of Figure 6 run on real hardware instead of the
// simulated Sequent.  On a multi-core machine the curve should climb; on
// a single-core machine it demonstrates that the thread package
// multiplexes correctly with no speedup.
//
//	go run ./examples/speedup [-maxp N] [-n 100]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/threads"
	"repro/internal/workloads"
)

func main() {
	maxP := flag.Int("maxp", runtime.GOMAXPROCS(0), "largest proc count")
	n := flag.Int("n", 100, "matrix size")
	flag.Parse()

	fmt.Printf("mm (%dx%d int matmul) on %d-CPU host\n", *n, *n, runtime.NumCPU())
	var times []time.Duration
	var check int64
	for p := 1; p <= *maxP; p++ {
		sys := threads.New(proc.New(p), threads.Options{})
		start := time.Now()
		sys.Run(func() { check = workloads.MM(sys, p, *n, 1) })
		times = append(times, time.Since(start))
	}
	sp := stats.SelfRelative(times)
	fmt.Printf("%6s %12s %9s\n", "procs", "time", "speedup")
	for i, t := range times {
		fmt.Printf("%6d %12s %9.2f\n", i+1, t.Round(time.Microsecond), sp[i])
	}
	fmt.Printf("checksum %d (identical across proc counts)\n", check)
}
