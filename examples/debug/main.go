// Debug: record/replay concurrent debugging, the MP application of
// Tolmach & Appel that the paper cites.  A racy program (threads
// interleave read/yield/write updates to a shared account) computes a
// schedule-dependent balance.  The example hunts randomized schedules
// for one whose outcome differs from the deterministic FIFO baseline,
// then replays the recorded schedule — reproducing that exact
// interleaving on every run, which is the whole point of a replay
// debugger.
//
//	go run ./examples/debug
package main

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/replay"
	"repro/internal/threads"
)

// buggyProgram has a classic lost-update race *under this thread
// package's rules*: each thread reads the balance, yields (simulating
// work), and writes back the increment.  On one proc the outcome depends
// entirely on the schedule.
func buggyProgram(s *threads.System, balance *int) func() {
	return func() {
		for i := 0; i < 4; i++ {
			s.Fork(func() {
				read := *balance // read
				s.Yield()        // schedule-dependent gap
				*balance = read + 10
			})
		}
	}
}

func runOnce(mk queue.Factory[threads.Entry]) int {
	s := threads.New(proc.New(1), threads.Options{NewQueue: mk})
	balance := 0
	s.Run(buggyProgram(s, &balance))
	return balance
}

func main() {
	baseline := runOnce(nil) // deterministic FIFO schedule
	fmt.Printf("FIFO schedule: balance = %d (40 would mean no lost updates)\n", baseline)

	// Hunt: find a randomized schedule whose interleaving differs.
	var badLog *replay.Log
	var badSeed int64
	var badBalance int
	for seed := int64(1); seed <= 500; seed++ {
		log, rec := replay.Record(func() queue.Queue[threads.Entry] {
			return queue.NewRandomSeeded[threads.Entry](seed)
		})
		if got := runOnce(rec); got != baseline {
			badLog, badSeed, badBalance = log, seed, got
			break
		}
	}
	if badLog == nil {
		fmt.Println("no differing interleaving found in 500 schedules (unlucky); try again")
		return
	}
	fmt.Printf("schedule seed %d interleaves differently: balance = %d\n", badSeed, badBalance)
	fmt.Printf("recorded %d dispatch decisions\n", len(badLog.Order))

	// Replay: that exact interleaving reproduces every time.
	for i := 0; i < 3; i++ {
		got := runOnce(replay.Replay(badLog))
		fmt.Printf("replay %d: balance = %d (divergence: %q)\n", i+1, got, badLog.Divergence)
		if got != badBalance {
			panic("replay failed to reproduce the interleaving")
		}
	}
	fmt.Println("schedule-dependent outcome reproduced deterministically on every replay")
}
