// Sieve: the classic CSP prime sieve over the paper's selective
// communication channels (Figs. 4 and 5) — a pipeline of filter threads,
// each holding one prime, connected by synchronous channels.
//
//	go run ./examples/sieve [-n 50]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/proc"
	"repro/internal/sel"
	"repro/internal/threads"
)

func main() {
	n := flag.Int("n", 50, "how many primes to produce")
	flag.Parse()

	sys := threads.New(proc.New(runtime.GOMAXPROCS(0)), threads.Options{})

	var primes []int
	sys.Run(func() {
		// generate feeds 2, 3, 4, ... into the head of the pipeline.
		head := sel.NewChan[int](sys)
		sys.Fork(func() {
			for i := 2; ; i++ {
				head.Send(i)
			}
		})

		// Each round: receive a prime from the pipeline head, then splice
		// in a filter thread that removes its multiples.
		in := head
		for len(primes) < *n {
			p := in.Receive()
			primes = append(primes, p)
			out := sel.NewChan[int](sys)
			in2 := in
			sys.Fork(func() {
				for {
					v := in2.Receive()
					if v%p != 0 {
						out.Send(v)
					}
				}
			})
			in = out
		}
		// The generator and filters are still blocked on their channels;
		// the program simply stops using them (in SML/NJ, unreachable
		// threads are garbage collected — see DESIGN.md on the Go
		// substitution).
	})

	fmt.Printf("first %d primes:\n", *n)
	for i, p := range primes {
		fmt.Printf("%6d", p)
		if (i+1)%10 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
}
