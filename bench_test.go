// Package repro's root benchmark suite regenerates every quantitative
// artifact of the paper's evaluation (§6), one benchmark family per
// experiment in DESIGN.md's index:
//
//	E1  BenchmarkFigure6            speedup curves (simulated Sequent S81)
//	E2  BenchmarkBusTraffic         mm bus MB/s at 16 procs
//	E3  BenchmarkFigure6NoGC        speedup with GC excluded
//	E4  BenchmarkSimpleDiagnostics  idle and lock fractions for simple
//	E6  BenchmarkLockLatency        46µs Sequent vs 6µs SGI lock pairs
//	E7  BenchmarkFigure6SGI         the SGI, where the bus swamps all
//	A1  BenchmarkSpinAblation       TAS/TTAS/backoff/ticket/anderson
//	A2  BenchmarkRunQueueAblation   central vs distributed ready queues
//	A3  BenchmarkHeapAblation       allocation-region chunk sizing
//
// plus native microbenchmarks of the platform primitives (callcc/throw,
// fork/yield, channel send/receive, CML choose) and the native workloads.
// Custom metrics carry the paper's numbers: speedup, MB/s, idle%, µs.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/cml"
	"repro/internal/machine"
	"repro/internal/mlheap"
	"repro/internal/proc"
	"repro/internal/sel"
	"repro/internal/simwork"
	"repro/internal/spinlock"
	"repro/internal/threads"
	"repro/internal/workloads"
)

// runSim executes one simulated program at the machine's full proc count
// and reports the paper's metrics.
func runSim(b *testing.B, prName, cfgName string, nogc bool) {
	b.Helper()
	pr, ok := simwork.ByName(prName)
	if !ok {
		b.Fatalf("unknown program %s", prName)
	}
	cfg := machine.Configs[cfgName]()
	base := simwork.Run(pr, cfg, 1, 1)
	var r simwork.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = simwork.Run(pr, cfg, cfg.Procs, 1)
	}
	b.StopTimer()
	t1, tp := base.Makespan, r.Makespan
	if nogc {
		t1 -= base.GCNS
		tp -= r.GCNS
	}
	speedup := float64(t1) / float64(tp)
	if pr.Independent {
		speedup *= float64(cfg.Procs)
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(r.BusMBps(), "busMB/s")
	b.ReportMetric(r.IdleFrac()*100, "idle%")
	b.ReportMetric(float64(r.GCs), "gcs")
}

// E1 / Figure 6: the six curves on the simulated Sequent Symmetry S81.
func BenchmarkFigure6(b *testing.B) {
	for _, pr := range simwork.Programs() {
		b.Run(pr.Name, func(b *testing.B) { runSim(b, pr.Name, "sequent", false) })
	}
}

// E3: Figure 6 with garbage-collection time excluded — abisort and
// allpairs climb considerably.
func BenchmarkFigure6NoGC(b *testing.B) {
	for _, name := range []string{"allpairs", "abisort", "mm"} {
		b.Run(name, func(b *testing.B) { runSim(b, name, "sequent", true) })
	}
}

// E7: the SGI 4D/380S, whose fast processors saturate a barely faster
// bus: memory contention swamps every other effect.
func BenchmarkFigure6SGI(b *testing.B) {
	for _, pr := range simwork.Programs() {
		b.Run(pr.Name, func(b *testing.B) { runSim(b, pr.Name, "sgi", false) })
	}
}

// E2: mm's allocation traffic against the Sequent's 25 MB/s bus.
func BenchmarkBusTraffic(b *testing.B) {
	cfg := machine.SequentS81()
	var r simwork.Result
	for i := 0; i < b.N; i++ {
		r = simwork.Run(simwork.MM(), cfg, 16, 1)
	}
	b.ReportMetric(r.BusMBps(), "busMB/s")
	b.ReportMetric(cfg.BusBytesPerSec/1e6, "busmaxMB/s")
}

// E4: simple's idle and contention profile at 10 procs.
func BenchmarkSimpleDiagnostics(b *testing.B) {
	cfg := machine.SequentS81()
	var r simwork.Result
	for i := 0; i < b.N; i++ {
		r = simwork.Run(simwork.Simple(), cfg, 10, 1)
	}
	b.ReportMetric(r.IdleFrac()*100, "idle%")
	b.ReportMetric(r.LockFrac()*100, "lockwait%")
}

// E6: the lock-latency footnote, on every machine model.
func BenchmarkLockLatency(b *testing.B) {
	for name, mk := range machine.Configs {
		b.Run(name, func(b *testing.B) {
			var lat int64
			for i := 0; i < b.N; i++ {
				lat = machine.New(mk(), 1, 0).LockLatency()
			}
			b.ReportMetric(float64(lat)/1e3, "µs/lockpair")
		})
	}
}

// A1: spin-lock strategy ablation under real contention on the host.
func BenchmarkSpinAblation(b *testing.B) {
	for _, v := range spinlock.Variants {
		b.Run(v.Name, func(b *testing.B) {
			l := v.New()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock()
				}
			})
		})
	}
}

// A2: central versus distributed run queues under a fork/yield storm,
// the evaluation package's scheduler change.
func BenchmarkRunQueueAblation(b *testing.B) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"central", false}, {"distributed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := threads.New(proc.New(runtime.GOMAXPROCS(0)),
					threads.Options{Distributed: mode.distributed})
				sys.Run(func() {
					for j := 0; j < 200; j++ {
						sys.Fork(func() {
							sys.Yield()
							sys.Yield()
						})
					}
				})
			}
		})
	}
}

// A3: allocation-region chunk sizing for the mlheap allocator — the
// trade-off behind §5's per-proc allocation regions.
func BenchmarkHeapAblation(b *testing.B) {
	for _, chunk := range []int{16, 64, 256, 1024} {
		b.Run(map[int]string{16: "chunk16", 64: "chunk64", 256: "chunk256", 1024: "chunk1024"}[chunk],
			func(b *testing.B) {
				h := mlheap.New(mlheap.Config{
					NurseryWords: 1 << 16, SemiWords: 1 << 18, ChunkWords: chunk, Procs: 1,
				})
				pa := h.NewProcAlloc()
				var root mlheap.Value = mlheap.Nil
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, err := pa.AllocRecord(mlheap.Int(int64(i)), root)
					if err != nil {
						h.Collect([]*mlheap.Value{&root})
						continue
					}
					switch {
					case i%4096 == 0:
						root = mlheap.Nil // bound retention: measure allocation, not leak growth
					case i%64 == 0:
						root = v
					}
				}
			})
	}
}

// Platform microbenchmarks: the §2 claim that continuation-based thread
// operations are cheap.

func BenchmarkYieldRoundTrip(b *testing.B) {
	sys := threads.New(proc.New(1), threads.Options{})
	b.ResetTimer()
	sys.Run(func() {
		for i := 0; i < b.N; i++ {
			sys.Yield() // capture + enqueue + dispatch + throw
		}
	})
}

func BenchmarkForkJoin(b *testing.B) {
	sys := threads.New(proc.New(runtime.GOMAXPROCS(0)), threads.Options{})
	b.ResetTimer()
	sys.Run(func() {
		for i := 0; i < b.N; i++ {
			sys.Fork(func() {})
		}
	})
}

func BenchmarkSelChannel(b *testing.B) {
	sys := threads.New(proc.New(2), threads.Options{})
	b.ResetTimer()
	sys.Run(func() {
		ch := sel.NewChan[int](sys)
		sys.Fork(func() {
			for i := 0; i < b.N; i++ {
				ch.Send(i)
			}
		})
		for i := 0; i < b.N; i++ {
			ch.Receive()
		}
	})
}

func BenchmarkCMLChoose(b *testing.B) {
	sys := threads.New(proc.New(2), threads.Options{})
	b.ResetTimer()
	sys.Run(func() {
		a, c := cml.NewChan[int](), cml.NewChan[int]()
		sys.Fork(func() {
			for i := 0; i < b.N; i++ {
				cml.Sync(sys, a.SendEvt(i))
			}
		})
		for i := 0; i < b.N; i++ {
			cml.Select(sys, a.RecvEvt(), c.RecvEvt())
		}
	})
}

// Native workloads at the host's proc count (paper problem sizes).
func BenchmarkNativeWorkloads(b *testing.B) {
	for _, spec := range workloads.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			w := runtime.GOMAXPROCS(0)
			for i := 0; i < b.N; i++ {
				sys := threads.New(proc.New(w), threads.Options{})
				sys.Run(func() { spec.Run(sys, w, 1) })
			}
		})
	}
}

// F1: the paper's §7 future-work proposals (cache-resident nursery,
// concurrent GC) evaluated on the Sequent model.
func BenchmarkFutureWork(b *testing.B) {
	for _, variant := range []struct {
		name  string
		tweak func(*machine.Config)
	}{
		{"baseline", func(*machine.Config) {}},
		{"cacheNursery", func(c *machine.Config) { c.CacheResidentNursery = true }},
		{"concGC", func(c *machine.Config) { c.ConcurrentGC = true }},
		{"both", func(c *machine.Config) { c.CacheResidentNursery = true; c.ConcurrentGC = true }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := machine.SequentS81()
			variant.tweak(&cfg)
			pr := simwork.MM()
			base := simwork.Run(pr, cfg, 1, 1)
			var r simwork.Result
			for i := 0; i < b.N; i++ {
				r = simwork.Run(pr, cfg, cfg.Procs, 1)
			}
			b.ReportMetric(float64(base.Makespan)/float64(r.Makespan), "speedup")
			b.ReportMetric(r.BusMBps(), "busMB/s")
		})
	}
}

// A4: GC survival-rate sensitivity — how the sequential collector's
// Amdahl share moves the allpairs curve.
func BenchmarkGCSurvivalAblation(b *testing.B) {
	for _, surv := range []struct {
		name string
		v    float64
	}{{"s01", 0.01}, {"s03", 0.03}, {"s10", 0.10}, {"s25", 0.25}} {
		b.Run(surv.name, func(b *testing.B) {
			cfg := machine.SequentS81()
			pr := simwork.Allpairs()
			pr.Survival = surv.v
			base := simwork.Run(pr, cfg, 1, 1)
			var r simwork.Result
			for i := 0; i < b.N; i++ {
				r = simwork.Run(pr, cfg, cfg.Procs, 1)
			}
			b.ReportMetric(float64(base.Makespan)/float64(r.Makespan), "speedup")
			b.ReportMetric(float64(r.GCs), "gcs")
		})
	}
}

// A5: allocation-region (nursery) sizing — frequency vs length of the
// stop-the-world pauses.
func BenchmarkNurserySizeAblation(b *testing.B) {
	for _, n := range []struct {
		name  string
		words int64
	}{{"64k", 64 << 10}, {"256k", 256 << 10}, {"1M", 1 << 20}} {
		b.Run(n.name, func(b *testing.B) {
			cfg := machine.SequentS81()
			cfg.NurseryWords = n.words
			pr := simwork.Abisort()
			base := simwork.Run(pr, cfg, 1, 1)
			var r simwork.Result
			for i := 0; i < b.N; i++ {
				r = simwork.Run(pr, cfg, cfg.Procs, 1)
			}
			b.ReportMetric(float64(base.Makespan)/float64(r.Makespan), "speedup")
			b.ReportMetric(float64(r.GCs), "gcs")
		})
	}
}
