// Command locktime regenerates the paper's §6 footnote 4 comparison:
// "locking and unlocking an MP mutex takes only 6µsec on the SGI versus
// 46µsec on the Sequent" — on the simulated machine models, plus measured
// costs for every native spin-lock flavor on the host machine (experiment
// E6 and ablation A1 in DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/platform/registry"
	"repro/internal/spinlock"
)

func main() {
	iters := flag.Int("iters", 1_000_000, "iterations for native measurements")
	flag.Parse()

	fmt.Println("Simulated machine models (paper §6 footnote 4):")
	for _, name := range []string{"sequent", "sgi", "luna", "uni"} {
		cfg := machine.Configs[name]()
		lat := machine.New(cfg, 1, 0).LockLatency()
		fmt.Printf("  %-12s lock+unlock: %5.1f µs\n", cfg.Name, float64(lat)/1e3)
	}

	fmt.Println("\nNative spin-lock flavors on this host (uncontended):")
	for _, v := range spinlock.Variants {
		l := v.New()
		start := time.Now()
		for i := 0; i < *iters; i++ {
			l.Lock()
			l.Unlock()
		}
		per := time.Since(start) / time.Duration(*iters)
		fmt.Printf("  %-12s lock+unlock: %7.1f ns\n", v.Name, float64(per.Nanoseconds()))
	}

	fmt.Println("\nPort lock primitives on this host (uncontended):")
	for _, b := range registry.All() {
		l := b.NewLock()
		start := time.Now()
		for i := 0; i < *iters; i++ {
			l.Lock()
			l.Unlock()
		}
		per := time.Since(start) / time.Duration(*iters)
		fmt.Printf("  %-12s lock+unlock: %7.1f ns  (%s)\n", b.Name, float64(per.Nanoseconds()), b.Description)
	}
}
