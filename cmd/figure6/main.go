// Command figure6 regenerates the paper's Figure 6 (self-relative speedup
// for the five benchmarks and the seq control) on a simulated machine
// model, plus the §6 diagnostics: per-benchmark idle, lock-contention,
// bus-traffic and GC breakdowns (experiments E1-E4 and E7 in DESIGN.md).
//
// Usage:
//
//	figure6 [-machine sequent|sgi|luna|uni] [-maxp N] [-nogc] [-chart]
//	        [-csv file] [-detail program] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	machineName := flag.String("machine", "sequent", "machine model: sequent, sgi, luna, uni")
	maxP := flag.Int("maxp", 0, "largest proc count (default: all the machine has)")
	noGC := flag.Bool("nogc", false, "also print speedups with GC time excluded (E3)")
	chart := flag.Bool("chart", false, "render an ASCII chart of the curves")
	csvPath := flag.String("csv", "", "write the full series as CSV to this file")
	detail := flag.String("detail", "", "print the diagnostic breakdown for one program")
	future := flag.Bool("future", false, "also evaluate the paper's §7 future-work proposals")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	series, err := experiments.Figure6(*machineName, *maxP, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Print(experiments.SpeedupTable(series, false))
	if *noGC {
		fmt.Println()
		fmt.Print(experiments.SpeedupTable(series, true))
	}
	if *chart {
		fmt.Println()
		fmt.Print(experiments.AsciiChart(series, 64, 20))
	}

	sum := experiments.Summarize(series)
	fmt.Println()
	fmt.Printf("headline checks (paper §6):\n")
	fmt.Printf("  order best->worst:            %v\n", sum.Order)
	fmt.Printf("  seq final speedup:            %.2f (paper: near linear)\n", sum.SeqFinalSpeedup)
	fmt.Printf("  mm final speedup:             %.2f (paper: excellent, almost seq)\n", sum.MMFinalSpeedup)
	fmt.Printf("  mm bus traffic at max procs:  %.1f MB/s (paper: ~20 of 25 MB/s max)\n", sum.MMBusMBpsAt16)
	fmt.Printf("  simple idle at 10 procs:      %.0f%% (paper: >50%%)\n", sum.SimpleIdleAt10*100)
	fmt.Printf("  nogc gain allpairs/abisort:   %.2fx / %.2fx (paper: considerably higher)\n",
		sum.NoGCGainAllpairs, sum.NoGCGainAbisort)

	if *future {
		rows, err := experiments.FutureWork(*machineName, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(experiments.FutureWorkTable(rows, *machineName))
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(experiments.CSV(series)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}

	if *detail != "" {
		p := *maxP
		if p == 0 {
			p = 16
		}
		r, err := experiments.Detail(*detail, *machineName, p, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ndetail: %s on %s with %d procs\n", r.Program, r.Machine, r.Procs)
		fmt.Printf("  makespan:   %.1f ms (virtual)\n", float64(r.Makespan)/1e6)
		fmt.Printf("  idle:       %.1f%%\n", r.IdleFrac()*100)
		fmt.Printf("  lock wait:  %.2f%%\n", r.LockFrac()*100)
		fmt.Printf("  bus:        %.1f MB/s (%d bytes total)\n", r.BusMBps(), r.BusBytes)
		fmt.Printf("  GCs:        %d, %.1f ms sequential collection\n", r.GCs, float64(r.GCNS)/1e6)
		fmt.Printf("  lock ops:   %d\n", r.Totals.LockOps)
		fmt.Printf("  unified counters (machine registry, per-proc sharded):\n")
		fmt.Print(indent(r.Metrics.Format(), "  "))
	}
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
