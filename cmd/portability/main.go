// Command portability regenerates the paper's §6 portability table.  The
// paper counts the lines of system-dependent code in each MP port against
// the size of the whole runtime:
//
//	SGI:     144 C + 15 asm        Luna:   630 C + 34 asm
//	Sequent: 267 C + 10 asm        whole runtime: ~6,750 C + 650 asm
//
// This repository mirrors the generic/system-dependent split: each
// subdirectory of internal/platform is one port, and everything else is
// generic.  The tool prints the equivalent census for this codebase
// (experiment E5 in DESIGN.md).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/stats"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// Locate the repository root by looking for go.mod.
	for i := 0; i < 5; i++ {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		root = filepath.Join(root, "..")
	}

	total, err := stats.CountGoTree(filepath.Join(root, "internal"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ports := []string{"sequent", "sgi", "luna", "uni", "native"}
	fmt.Println("System-dependent code per port (cf. paper §6: SGI 144+15,")
	fmt.Println("Sequent 267+10, Luna 630+34 lines against a ~6,750-line runtime):")
	fmt.Println()
	fmt.Printf("  %-10s %8s %8s %9s\n", "port", "files", "lines", "% of all")
	var portLines int
	for _, p := range ports {
		loc, err := stats.CountGo(filepath.Join(root, "internal", "platform", p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		portLines += loc.Lines
		fmt.Printf("  %-10s %8d %8d %8.1f%%\n", p, loc.Files, loc.Lines,
			100*float64(loc.Lines)/float64(total.Lines))
	}
	shared, err := stats.CountGo(filepath.Join(root, "internal", "platform"))
	if err == nil {
		fmt.Printf("  %-10s %8d %8d %8.1f%%  (port interface)\n", "(shared)",
			shared.Files, shared.Lines, 100*float64(shared.Lines)/float64(total.Lines))
		portLines += shared.Lines
	}
	fmt.Println()
	fmt.Printf("  generic platform + clients: %d lines in %d files\n",
		total.Lines-portLines, total.Files)
	fmt.Printf("  system-dependent share:     %.1f%% of the library\n",
		100*float64(portLines)/float64(total.Lines))
	fmt.Println()
	fmt.Println("The paper's point survives translation: each port is a few dozen")
	fmt.Println("lines supplying the machine's lock primitive and proc limit, while")
	fmt.Println("the platform, thread packages, selective communication, CML, and")
	fmt.Println("the heap are shared by all ports.")
}
