// Command mpbench runs the paper's benchmarks natively: real parallel
// implementations over the MP platform (continuation threads, spin locks,
// barriers) on the host machine, sweeping proc counts and printing
// self-relative speedups — the native counterpart of cmd/figure6.
//
// Usage:
//
//	mpbench [-bench all|allpairs|mst|abisort|simple|mm|seq]
//	        [-maxp N] [-reps N] [-seed N] [-distributed] [-quantum d]
//	        [-metrics] [-trace out.json] [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/internal/threads"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	maxP := flag.Int("maxp", runtime.GOMAXPROCS(0), "largest proc count")
	reps := flag.Int("reps", 3, "repetitions per point (min is reported)")
	seed := flag.Int64("seed", 1, "workload seed")
	distributed := flag.Bool("distributed", false, "use distributed run queues")
	quantum := flag.Duration("quantum", 0, "preemption quantum (0 = none)")
	showMetrics := flag.Bool("metrics", false, "print unified metrics snapshots per point")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the last run to this file")
	jsonPath := flag.String("json", "", "write machine-readable results as JSON to this file")
	flag.Parse()

	if *showMetrics {
		// Route spin-lock contention into the default registry; the hook
		// has no cheap proc id, so the counter is unsharded.
		spins := metrics.Default.Counter("spinlock.contended_spins")
		spinlock.OnContention = func(n int64) { spins.Add(0, n) }
	}

	var specs []workloads.Spec
	for _, s := range workloads.Specs() {
		if *bench == "all" || s.Name == *bench {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}

	// point is one (bench, procs) measurement in the -json report.
	type point struct {
		Bench    string  `json:"bench"`
		Procs    int     `json:"procs"`
		TimeNS   int64   `json:"time_ns"` // best of -reps
		Speedup  float64 `json:"speedup"` // self-relative
		Checksum int64   `json:"checksum"`
	}
	var points []point

	fmt.Printf("native MP benchmarks on %d-CPU host (GOMAXPROCS=%d)\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %6s %12s %9s\n", "bench", "procs", "time", "speedup")
	var lastTracer *trace.Tracer
	for _, spec := range specs {
		var times []time.Duration
		for p := 1; p <= *maxP; p++ {
			best := time.Duration(0)
			var sum int64
			var lastSys *threads.System
			defBase := metrics.Default.Snapshot()
			for r := 0; r < *reps; r++ {
				var tr *trace.Tracer
				if *tracePath != "" {
					tr = trace.New(p, 1<<14)
					tr.Enable()
					lastTracer = tr
				}
				sys := threads.New(proc.New(p), threads.Options{
					Distributed: *distributed,
					Quantum:     *quantum,
					Tracer:      tr,
				})
				start := time.Now()
				sys.Run(func() { sum = spec.Run(sys, p, *seed) })
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
				lastSys = sys
			}
			times = append(times, best)
			sp := stats.SelfRelative(times)
			fmt.Printf("%-10s %6d %12s %9.2f   (checksum %d)\n",
				spec.Name, p, best.Round(time.Microsecond), sp[p-1], sum)
			points = append(points, point{
				Bench:    spec.Name,
				Procs:    p,
				TimeNS:   best.Nanoseconds(),
				Speedup:  sp[p-1],
				Checksum: sum,
			})
			if *showMetrics {
				fmt.Printf("  platform registry (last rep):\n")
				fmt.Print(lastSys.Metrics().Snapshot().Format())
				if d := metrics.Default.Snapshot().Diff(defBase); len(d.Counters) > 0 {
					fmt.Printf("  default registry diff (sel/cml/spinlock, all reps):\n")
					fmt.Print(d.Format())
				}
			}
		}
		fmt.Println()
	}

	if *jsonPath != "" {
		report := struct {
			CPUs       int     `json:"cpus"`
			GOMAXPROCS int     `json:"gomaxprocs"`
			Reps       int     `json:"reps"`
			Seed       int64   `json:"seed"`
			Points     []point `json:"points"`
		}{runtime.NumCPU(), runtime.GOMAXPROCS(0), *reps, *seed, points}
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *tracePath != "" && lastTracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := lastTracer.WriteChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d events (%d dropped), load via chrome://tracing or ui.perfetto.dev\n",
			*tracePath, len(lastTracer.Events()), lastTracer.Dropped())
	}
}
