// Command mpbench runs the paper's benchmarks natively: real parallel
// implementations over the MP platform (continuation threads, spin locks,
// barriers) on the host machine, sweeping proc counts and printing
// self-relative speedups — the native counterpart of cmd/figure6.
//
// Usage:
//
//	mpbench [-bench all|allpairs|mst|abisort|simple|mm|seq]
//	        [-maxp N] [-reps N] [-seed N] [-distributed] [-quantum d]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/threads"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	maxP := flag.Int("maxp", runtime.GOMAXPROCS(0), "largest proc count")
	reps := flag.Int("reps", 3, "repetitions per point (min is reported)")
	seed := flag.Int64("seed", 1, "workload seed")
	distributed := flag.Bool("distributed", false, "use distributed run queues")
	quantum := flag.Duration("quantum", 0, "preemption quantum (0 = none)")
	flag.Parse()

	var specs []workloads.Spec
	for _, s := range workloads.Specs() {
		if *bench == "all" || s.Name == *bench {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}

	fmt.Printf("native MP benchmarks on %d-CPU host (GOMAXPROCS=%d)\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %6s %12s %9s\n", "bench", "procs", "time", "speedup")
	for _, spec := range specs {
		var times []time.Duration
		for p := 1; p <= *maxP; p++ {
			best := time.Duration(0)
			var sum int64
			for r := 0; r < *reps; r++ {
				sys := threads.New(proc.New(p), threads.Options{
					Distributed: *distributed,
					Quantum:     *quantum,
				})
				start := time.Now()
				sys.Run(func() { sum = spec.Run(sys, p, *seed) })
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
			}
			times = append(times, best)
			sp := stats.SelfRelative(times)
			fmt.Printf("%-10s %6d %12s %9.2f   (checksum %d)\n",
				spec.Name, p, best.Round(time.Microsecond), sp[p-1], sum)
		}
		fmt.Println()
	}
}
