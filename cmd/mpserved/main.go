// Command mpserved runs the MP serving subsystem as a standalone daemon:
// a TCP/HTTP server whose entire request path — accept, admission,
// queueing, dispatch, handling — is scheduled as MP threads over procs
// and locks, never raw goroutines.  It serves the five evaluation
// kernels (/work/<name>), /echo, /compute, and the observability
// endpoints /metrics, /trace, /log.
//
// With -shards N (N > 1) or -mux it instead runs the sharded serving
// fabric: N independent backend shards — each its own proc platform,
// thread system, and metrics registry — behind one keep-alive front
// acceptor, with a rebalancer shifting proc allowance toward loaded
// shards every -rebalance front-clock ticks (see internal/shard).  The
// process hosts one goroutine per fabric runner, exactly the
// System.Run host role.  -mux swaps the per-connection front threads
// for a fixed pool of -pollers event-multiplexed poller threads
// (internal/netpoll), letting the front hold tens of thousands of
// mostly-idle keep-alive connections in parked state-machine form.
//
// SIGINT/SIGTERM triggers a graceful drain: single-server mode shrinks
// the processor allowance via proc.SetLimit so procs release themselves
// at safe points; fabric mode cascades front → shards with zero dropped
// in-flight requests.  Either way the process exits after printing a
// final metrics snapshot.
//
// Usage:
//
//	mpserved [-addr host:port] [-procs N] [-inflight N] [-queue N]
//	         [-deadline ticks] [-tick d] [-quantum d] [-distributed]
//	         [-ring N] [-trace out.json] [-batch N]
//	         [-shards N] [-rebalance ticks] [-route-header name] [-steal N]
//	         [-reply-coalesce=bool] [-reply-spin N] [-fair-locks]
//	         [-mux] [-pollers N] [-maxconns N] [-idle ticks]
//	         [-autoscale] [-min-shards N] [-max-shards N]
//	         [-scale-up-load N] [-scale-down-load N]
//	         [-mlalloc] [-ml-nursery W] [-ml-semi W] [-ml-chunk W]
//	         [-ml-region W] [-gc-seq] [-gc-aware=bool]
//
// -mlalloc installs the allocating /work/mlalloc kernel backed by the
// ML heap (internal/mlheap + internal/gcsync): request threads attach
// as procs, allocate with bump pointers, and collect in parallel at
// clean-point barriers.  -gc-seq selects the paper's one-collector
// stop (the BENCH_gc ablation); -gc-aware=false drops the GC-aware
// spin locks from the admission and forward-ring paths.
//
// In fabric mode the membership is elastic: the admin /scale?shards=N
// endpoint (and, with -autoscale, a load-driven autoscaler) acquires
// and releases whole shards at runtime with zero dropped in-flight
// requests and zero missing acked pub/sub deliveries (see
// internal/shard/member.go).  /fabricz reports the membership epoch
// and per-member phase.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/gcsync"
	"repro/internal/mlheap"
	"repro/internal/proc"
	"repro/internal/pubsub"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/threads"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "TCP listen address")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "processor allowance (max procs; fabric: per shard)")
	inflight := flag.Int("inflight", 64, "max concurrently-handled requests (fabric: per shard)")
	queueDepth := flag.Int("queue", 128, "accept queue depth (beyond this, shed with 503)")
	deadline := flag.Int64("deadline", 2000, "per-request deadline in clock ticks")
	tick := flag.Duration("tick", time.Millisecond, "wall duration of one clock tick")
	quantum := flag.Duration("quantum", 0, "preemption quantum (0 = cooperative only)")
	distributed := flag.Bool("distributed", false, "use distributed run queues")
	ring := flag.Int("ring", 1<<14, "trace ring size per proc (0 = no tracer)")
	tracePath := flag.String("trace", "", "also write the trace to this file at exit")
	batch := flag.Int("batch", 16, "max units per batched transfer (dispatch drain, multi-push, steal claim); 1 disables batching")
	shards := flag.Int("shards", 1, "backend shard count (>1 runs the sharded fabric)")
	rebalance := flag.Int64("rebalance", 50, "fabric: rebalancer period in front ticks (0 disables)")
	routeHeader := flag.String("route-header", "X-Shard-Key", "fabric: sticky consistent-hash routing header")
	steal := flag.Int("steal", 2, "fabric: min sibling ring occupancy before an idle shard steals (0 disables)")
	replyCoalesce := flag.Bool("reply-coalesce", true, "fabric: batch reply completion + coalesced response writes (false restores per-cell waits and per-response writes)")
	replySpin := flag.Int("reply-spin", 64, "fabric: adaptive reply spin budget cap, in yields before parking")
	mux := flag.Bool("mux", false, "fabric: event-multiplexed front (poller pool instead of a thread per connection)")
	pollers := flag.Int("pollers", 2, "fabric: poller thread count in -mux mode")
	maxConns := flag.Int("maxconns", 0, "fabric: max concurrently-held front connections (0 = fabric default)")
	idle := flag.Int64("idle", 0, "fabric: keep-alive idle budget between requests, in front ticks (0 = deadline)")
	pubsubOn := flag.Bool("pubsub", false, "install the pub/sub broker (/publish, /subscribe, /unsubscribe)")
	tenantQuota := flag.Int("tenant-quota", 0, "pubsub: per-tenant publish admission rate, publishes/sec (0 = unlimited)")
	tenantHeader := flag.String("tenant-header", "X-Tenant", "pubsub: tenant-id request header")
	streamDepth := flag.Int("stream-depth", 0, "pubsub: per-subscriber frame ring depth (0 = default 256)")
	hb := flag.Int64("hb", 0, "pubsub: streaming heartbeat quiet budget in ticks (0 = default 2500, <0 disables)")
	autoscale := flag.Bool("autoscale", false, "fabric: load-driven whole-shard scale up/down between -min-shards and -max-shards")
	minShards := flag.Int("min-shards", 0, "fabric: membership floor (0 = 1)")
	maxShards := flag.Int("max-shards", 0, "fabric: membership ceiling (0 = 2x -shards, capped by the boot proc budget)")
	scaleUpLoad := flag.Int("scale-up-load", 0, "fabric: mean ring depth per member that votes a shard in (0 = default 8)")
	scaleDownLoad := flag.Int("scale-down-load", 0, "fabric: mean ring depth per member that votes a shard out (0 = default 2)")
	mlalloc := flag.Bool("mlalloc", false, "install the allocating /work/mlalloc kernel backed by the ML heap (fabric: one world per member)")
	mlNursery := flag.Int("ml-nursery", 1<<16, "mlalloc: nursery size in words")
	mlSemi := flag.Int("ml-semi", 1<<20, "mlalloc: semispace size in words")
	mlChunk := flag.Int("ml-chunk", 1024, "mlalloc: per-proc allocation chunk in words")
	mlRegion := flag.Int("ml-region", 512, "mlalloc: per-collector copy region in words")
	gcSeq := flag.Bool("gc-seq", false, "mlalloc: sequential one-collector stop-the-world (ablation baseline; default parallel)")
	gcAware := flag.Bool("gc-aware", true, "mlalloc: GC-aware spin locks on the admission/ring paths (false = plain locks ablation)")
	fairLocks := flag.Bool("fair-locks", false, "FIFO claim/release locks on the hot paths (rings, reply waits, mux inbox, admission guards); false = TAS spin ablation baseline")
	flag.Parse()

	if *shards > 1 || *mux {
		if *rebalance <= 0 {
			*rebalance = shard.NoRebalance
		}
		if *steal <= 0 {
			*steal = shard.NoSteal
		}
		runFabric(shard.Options{
			Addr:           *addr,
			Shards:         *shards,
			BackendProcs:   *procs,
			MaxInFlight:    *inflight,
			QueueDepth:     *queueDepth,
			DeadlineTicks:  *deadline,
			IdleTicks:      *idle,
			BatchMax:       *batch,
			StealMin:       *steal,
			ReplySpin:      *replySpin,
			PerCellReplies: !*replyCoalesce,
			FairLocks:      *fairLocks,
			RebalanceTicks: *rebalance,
			RouteHeader:    *routeHeader,
			Tick:           *tick,
			Quantum:        *quantum,
			MaxConns:       *maxConns,
			Mux:            *mux,
			Pollers:        *pollers,
			PubSub:         *pubsubOn,
			TenantQuota:    *tenantQuota,
			TenantHeader:   *tenantHeader,
			StreamDepth:    *streamDepth,
			HeartbeatTicks: *hb,
			Autoscale:      *autoscale,
			MinShards:      *minShards,
			MaxShards:      *maxShards,
			ScaleUpLoad:    *scaleUpLoad,
			ScaleDownLoad:  *scaleDownLoad,
			MLAlloc:        *mlalloc,
			MLNursery:      *mlNursery,
			MLSemi:         *mlSemi,
			MLChunk:        *mlChunk,
			MLRegion:       *mlRegion,
			MLGCSequential: *gcSeq,
			MLGCPlainLocks: !*gcAware,
		})
		return
	}

	pl := proc.New(*procs)
	sys := threads.New(pl, threads.Options{
		Distributed: *distributed,
		Quantum:     *quantum,
	})

	// The tracer is private to the server (see serve.Options.Tracer): the
	// /trace endpoint's stop-the-world snapshot quiesces serve's own
	// emitters only.
	var tr *trace.Tracer
	if *ring > 0 {
		tr = trace.New(*procs, *ring)
	}

	// The ML world (if -mlalloc) must cover every concurrently-attached
	// handler thread, which admission bounds at -inflight.
	var world *gcsync.World
	if *mlalloc {
		world = gcsync.NewWorld(mlheap.Config{
			NurseryWords: *mlNursery,
			SemiWords:    *mlSemi,
			ChunkWords:   *mlChunk,
			RegionWords:  *mlRegion,
			Procs:        *inflight,
		})
		world.SetSequential(*gcSeq)
	}

	srv, err := serve.New(sys, serve.Options{
		Addr:          *addr,
		MaxInFlight:   *inflight,
		QueueDepth:    *queueDepth,
		DeadlineTicks: *deadline,
		DispatchBatch: *batch,
		Tick:          *tick,
		Tracer:        tr,
		MLWorld:       world,
		MLGCAware:     *gcAware,
		FairLocks:     *fairLocks,

		StreamHeartbeatTicks: *hb,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tr != nil {
		tr.Enable()
	}

	var wg sync.WaitGroup
	if *pubsubOn {
		broker := pubsub.New(sys, srv.Clock(), sys.Metrics(), pubsub.Options{
			TenantHeader: *tenantHeader,
			StreamDepth:  *streamDepth,
			QuotaPerSec:  *tenantQuota,
			Tick:         *tick,
		})
		pubsub.Install(srv, broker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			broker.Runner()()
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "mpserved: %v, draining\n", s)
		srv.Drain()
	}()

	fmt.Printf("mpserved listening on %s (procs=%d inflight=%d queue=%d deadline=%d ticks pubsub=%v)\n",
		srv.Addr(), *procs, *inflight, *queueDepth, *deadline, *pubsubOn)
	start := time.Now()
	sys.Run(func() { srv.Serve() })
	wg.Wait()
	fmt.Printf("mpserved drained after %s; final metrics:\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(sys.Metrics().Snapshot().Format())
	if world != nil {
		p := world.PauseSummary()
		fmt.Printf("%s\n", srv.MLStatsLine())
		fmt.Printf("gc_pause_us count=%d p50=%d p99=%d max=%d\n", p.Count, p.P50, p.P99, p.Max)
		fmt.Println("# mlheap registry")
		fmt.Print(world.Heap().Metrics().Snapshot().Format())
	}

	if *tracePath != "" && tr != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d events (%d dropped)\n", *tracePath, len(tr.Events()), tr.Dropped())
	}
}

// runFabric hosts the sharded serving fabric: one goroutine per runner
// (the front world plus each backend world), SIGTERM cascading the
// drain, and the merged metrics of every registry printed at exit.
func runFabric(opts shard.Options) {
	// Elastic membership needs a host-goroutine spawner: a shard acquired
	// at runtime brings its own serve and broker worlds, each a System.Run
	// host role exactly like the boot members' runners below.
	var wg sync.WaitGroup
	opts.Spawn = func(r func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r()
		}()
	}
	fab, err := shard.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "mpserved: %v, draining fabric\n", s)
		fab.Drain()
	}()

	front := "conn-threads"
	if opts.Mux {
		front = fmt.Sprintf("mux/pollers=%d", opts.Pollers)
	}
	fmt.Printf("mpserved fabric listening on %s (shards=%d procs/shard=%d inflight=%d rebalance=%d ticks batch=%d steal=%d reply-coalesce=%v reply-spin=%d fair-locks=%v front=%s autoscale=%v)\n",
		fab.Addr(), opts.Shards, opts.BackendProcs, opts.MaxInFlight, opts.RebalanceTicks,
		opts.BatchMax, opts.StealMin, !opts.PerCellReplies, opts.ReplySpin, opts.FairLocks, front, opts.Autoscale)
	start := time.Now()
	for _, r := range fab.Runners() {
		opts.Spawn(r)
	}
	wg.Wait()
	fmt.Printf("mpserved fabric drained after %s; final metrics:\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("# front registry")
	fmt.Print(fab.FrontMetrics().Snapshot().Format())
	for i := 0; i < fab.Shards(); i++ {
		fmt.Printf("# shard %d registry\n", i)
		fmt.Print(fab.Shard(i).System().Metrics().Snapshot().Format())
	}
}
