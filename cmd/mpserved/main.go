// Command mpserved runs the MP serving subsystem as a standalone daemon:
// a TCP/HTTP server whose entire request path — accept, admission,
// queueing, dispatch, handling — is scheduled as MP threads over procs
// and locks, never raw goroutines.  It serves the five evaluation
// kernels (/work/<name>), /echo, /compute, and the observability
// endpoints /metrics, /trace, /log.
//
// SIGINT/SIGTERM triggers a graceful drain: the processor allowance is
// shrunk via proc.SetLimit, procs release themselves at safe points,
// in-flight requests finish, queued-but-unstarted ones are shed, and
// the process exits after printing a final metrics snapshot.
//
// Usage:
//
//	mpserved [-addr host:port] [-procs N] [-inflight N] [-queue N]
//	         [-deadline ticks] [-tick d] [-quantum d] [-distributed]
//	         [-ring N] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/proc"
	"repro/internal/serve"
	"repro/internal/threads"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "TCP listen address")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "processor allowance (max procs)")
	inflight := flag.Int("inflight", 64, "max concurrently-handled requests")
	queueDepth := flag.Int("queue", 128, "accept queue depth (beyond this, shed with 503)")
	deadline := flag.Int64("deadline", 2000, "per-request deadline in clock ticks")
	tick := flag.Duration("tick", time.Millisecond, "wall duration of one clock tick")
	quantum := flag.Duration("quantum", 0, "preemption quantum (0 = cooperative only)")
	distributed := flag.Bool("distributed", false, "use distributed run queues")
	ring := flag.Int("ring", 1<<14, "trace ring size per proc (0 = no tracer)")
	tracePath := flag.String("trace", "", "also write the trace to this file at exit")
	flag.Parse()

	pl := proc.New(*procs)
	sys := threads.New(pl, threads.Options{
		Distributed: *distributed,
		Quantum:     *quantum,
	})

	// The tracer is private to the server (see serve.Options.Tracer): the
	// /trace endpoint's stop-the-world snapshot quiesces serve's own
	// emitters only.
	var tr *trace.Tracer
	if *ring > 0 {
		tr = trace.New(*procs, *ring)
	}

	srv, err := serve.New(sys, serve.Options{
		Addr:          *addr,
		MaxInFlight:   *inflight,
		QueueDepth:    *queueDepth,
		DeadlineTicks: *deadline,
		Tick:          *tick,
		Tracer:        tr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tr != nil {
		tr.Enable()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "mpserved: %v, draining\n", s)
		srv.Drain()
	}()

	fmt.Printf("mpserved listening on %s (procs=%d inflight=%d queue=%d deadline=%d ticks)\n",
		srv.Addr(), *procs, *inflight, *queueDepth, *deadline)
	start := time.Now()
	sys.Run(func() { srv.Serve() })
	fmt.Printf("mpserved drained after %s; final metrics:\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(sys.Metrics().Snapshot().Format())

	if *tracePath != "" && tr != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d events (%d dropped)\n", *tracePath, len(tr.Events()), tr.Dropped())
	}
}
