// Command mploadgen drives load at an mpserved instance and reports
// throughput and latency quantiles.  It is deliberately a plain Go
// program — the client side of the wire is not the system under test —
// with two modes:
//
//   - closed-loop (default): -conns workers each issue requests
//     back-to-back, so offered load tracks service capacity;
//   - open-loop: -rate R issues requests on a fixed schedule regardless
//     of completions, the mode that actually exposes queueing collapse
//     and admission-control behavior under overload.
//
// Closed-loop workers speak persistent HTTP/1.1 with -keepalive: each
// worker holds one connection and issues up to -reqs requests on it
// (framing responses by Content-Length) before redialing, and the
// summary reports the reused-connection ratio actually achieved.
// Extra request headers (-header "X-Shard-Key: hot") steer the sharded
// fabric's sticky router, the lever for forcing load skew.
//
// Every response is classified (2xx / shed 503 / expired 504 / error),
// and -json writes the full summary machine-readably for benchmark
// archiving (BENCH_serve.json, BENCH_shard.json).
//
// Usage:
//
//	mploadgen [-addr host:port] [-path /echo?msg=hi] [-conns N]
//	          [-keepalive] [-reqs N] [-header "K: V"]
//	          [-rate req/s] [-duration d] [-timeout d] [-json out.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	status  int
	latency time.Duration
}

// Summary is the machine-readable report; field names are the JSON
// contract consumed by benchmark archives.
type Summary struct {
	Addr       string  `json:"addr"`
	Path       string  `json:"path"`
	Mode       string  `json:"mode"` // "closed" or "open"
	Conns      int     `json:"conns"`
	KeepAlive  bool    `json:"keepalive"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"` // offered, open-loop only
	DurationMS int64   `json:"duration_ms"`

	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`             // 2xx
	Shed        int64   `json:"shed"`           // 503
	Expired     int64   `json:"expired"`        // 504
	OtherHTTP   int64   `json:"other_http"`     // any other status
	Errors      int64   `json:"errors"`         // dial/IO failures
	ConnsDialed int64   `json:"conns_dialed"`   // TCP connections opened
	ReusedRatio float64 `json:"reused_ratio"`   // responses on an already-used conn / responses
	Throughput  float64 `json:"throughput_rps"` // OK responses per second

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"` // over OK responses
}

// headerList collects repeated -header flags.
type headerList []string

func (h *headerList) String() string { return strings.Join(*h, "; ") }
func (h *headerList) Set(v string) error {
	if !strings.Contains(v, ":") {
		return fmt.Errorf("header %q is not of the form \"Name: value\"", v)
	}
	*h = append(*h, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "server address")
	path := flag.String("path", "/echo?msg=hi", "request path")
	conns := flag.Int("conns", 8, "closed-loop concurrent workers")
	keepalive := flag.Bool("keepalive", false, "closed-loop: reuse connections (persistent HTTP/1.1)")
	reqsPerConn := flag.Int("reqs", 100, "keep-alive: max requests per connection before redialing")
	rate := flag.Float64("rate", 0, "open-loop offered rate in req/s (0 = closed-loop)")
	duration := flag.Duration("duration", 5*time.Second, "test duration")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonPath := flag.String("json", "", "write the summary as JSON to this file")
	var headers headerList
	flag.Var(&headers, "header", "extra request header \"Name: value\" (repeatable)")
	flag.Parse()

	var (
		mu      sync.Mutex
		results []result
		sent    atomic.Int64
		errs    atomic.Int64
		dialed  atomic.Int64
		reused  atomic.Int64
	)
	record := func(st int, lat time.Duration) {
		mu.Lock()
		results = append(results, result{st, lat})
		mu.Unlock()
	}
	one := func() {
		sent.Add(1)
		start := time.Now()
		dialed.Add(1)
		st, _, err := doReq(*addr, *path, headers, *timeout)
		if err != nil {
			errs.Add(1)
			return
		}
		record(st, time.Since(start))
	}

	begin := time.Now()
	stop := begin.Add(*duration)
	var wg sync.WaitGroup
	mode := "closed"
	if *rate > 0 {
		mode = "open"
		// Open loop: a ticker schedules sends independent of completions.
		interval := time.Duration(float64(time.Second) / *rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for time.Now().Before(stop) {
			<-tick.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				one()
			}()
		}
	} else if *keepalive {
		for i := 0; i < *conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var kc *kaClient
				onConn := 0
				for time.Now().Before(stop) {
					if kc == nil {
						c, err := net.DialTimeout("tcp", *addr, *timeout)
						if err != nil {
							errs.Add(1)
							sent.Add(1)
							continue
						}
						kc = &kaClient{nc: c}
						dialed.Add(1)
						onConn = 0
					}
					sent.Add(1)
					start := time.Now()
					st, close, err := kc.do(*path, headers, *timeout)
					if err != nil {
						errs.Add(1)
						kc.nc.Close()
						kc = nil
						continue
					}
					record(st, time.Since(start))
					if onConn > 0 {
						reused.Add(1)
					}
					onConn++
					if close || onConn >= *reqsPerConn {
						kc.nc.Close()
						kc = nil
					}
				}
				if kc != nil {
					kc.nc.Close()
				}
			}()
		}
	} else {
		for i := 0; i < *conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					one()
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	s := Summary{
		Addr:        *addr,
		Path:        *path,
		Mode:        mode,
		Conns:       *conns,
		KeepAlive:   mode == "closed" && *keepalive,
		DurationMS:  elapsed.Milliseconds(),
		Sent:        sent.Load(),
		Errors:      errs.Load(),
		ConnsDialed: dialed.Load(),
	}
	if mode == "open" {
		s.RatePerSec = *rate
	}
	var okLats []float64
	for _, r := range results {
		switch {
		case r.status >= 200 && r.status < 300:
			s.OK++
			okLats = append(okLats, float64(r.latency.Microseconds())/1000)
		case r.status == 503:
			s.Shed++
		case r.status == 504:
			s.Expired++
		default:
			s.OtherHTTP++
		}
	}
	if responses := int64(len(results)); responses > 0 {
		s.ReusedRatio = float64(reused.Load()) / float64(responses)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		s.Throughput = float64(s.OK) / secs
	}
	sort.Float64s(okLats)
	s.LatencyMS.P50 = quantile(okLats, 0.50)
	s.LatencyMS.P90 = quantile(okLats, 0.90)
	s.LatencyMS.P99 = quantile(okLats, 0.99)
	if n := len(okLats); n > 0 {
		s.LatencyMS.Max = okLats[n-1]
	}

	fmt.Printf("%s %s (%s-loop", s.Addr, s.Path, s.Mode)
	if mode == "open" {
		fmt.Printf(", %.0f req/s offered", *rate)
	} else {
		fmt.Printf(", %d conns", *conns)
		if s.KeepAlive {
			fmt.Printf(", keep-alive")
		}
	}
	fmt.Printf(") over %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  sent %d: ok %d, shed %d, expired %d, other %d, errors %d\n",
		s.Sent, s.OK, s.Shed, s.Expired, s.OtherHTTP, s.Errors)
	if s.KeepAlive {
		fmt.Printf("  conns dialed %d, reused-conn ratio %.3f\n", s.ConnsDialed, s.ReusedRatio)
	}
	fmt.Printf("  throughput %.1f req/s  latency ms p50 %.2f p90 %.2f p99 %.2f max %.2f\n",
		s.Throughput, s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99, s.LatencyMS.Max)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// quantile returns the q-th quantile of sorted xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}

// kaClient is one persistent connection, framing responses by
// Content-Length so the connection survives across requests.
type kaClient struct {
	nc  net.Conn
	acc []byte
}

// do issues one request and reads one framed response, returning the
// status and whether the server asked to close the connection.
func (k *kaClient) do(path string, headers []string, timeout time.Duration) (int, bool, error) {
	k.nc.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: loadgen\r\nContent-Length: 0\r\n", path)
	for _, h := range headers {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := k.nc.Write(b.Bytes()); err != nil {
		return 0, false, err
	}
	buf := make([]byte, 4096)
	for {
		if head, rest, ok := bytes.Cut(k.acc, []byte("\r\n\r\n")); ok {
			lines := strings.Split(string(head), "\r\n")
			parts := strings.SplitN(lines[0], " ", 3)
			if len(parts) < 2 {
				return 0, false, fmt.Errorf("bad status line %q", lines[0])
			}
			status, err := strconv.Atoi(parts[1])
			if err != nil {
				return 0, false, err
			}
			clen, close := -1, false
			for _, ln := range lines[1:] {
				kk, v, ok := strings.Cut(ln, ":")
				if !ok {
					continue
				}
				switch strings.ToLower(strings.TrimSpace(kk)) {
				case "content-length":
					clen, err = strconv.Atoi(strings.TrimSpace(v))
					if err != nil {
						return 0, false, err
					}
				case "connection":
					close = strings.EqualFold(strings.TrimSpace(v), "close")
				}
			}
			if clen < 0 {
				return 0, false, fmt.Errorf("no Content-Length in %q", head)
			}
			for len(rest) < clen {
				n, err := k.nc.Read(buf)
				if n > 0 {
					rest = append(rest, buf[:n]...)
				} else if err != nil {
					return 0, false, err
				}
			}
			k.acc = append([]byte(nil), rest[clen:]...)
			return status, close, nil
		}
		n, err := k.nc.Read(buf)
		if n > 0 {
			k.acc = append(k.acc, buf[:n]...)
		} else if err != nil {
			return 0, false, err
		}
	}
}

// doReq issues one GET with Connection: close and returns the status.
func doReq(addr, path string, headers []string, timeout time.Duration) (int, bool, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, false, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n", path)
	for _, h := range headers {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := conn.Write(b.Bytes()); err != nil {
		return 0, false, err
	}
	raw, err := io.ReadAll(conn)
	if err != nil && len(raw) == 0 {
		return 0, false, err
	}
	line, _, ok := bytes.Cut(raw, []byte("\r\n"))
	if !ok {
		return 0, false, fmt.Errorf("no status line in %q", raw)
	}
	parts := strings.SplitN(string(line), " ", 3)
	if len(parts) < 2 {
		return 0, false, fmt.Errorf("bad status line %q", line)
	}
	st, err := strconv.Atoi(parts[1])
	return st, true, err
}
