// Command mploadgen drives load at an mpserved instance and reports
// throughput and latency quantiles.  It is deliberately a plain Go
// program — the client side of the wire is not the system under test —
// with two modes:
//
//   - closed-loop (default): -conns workers each issue requests
//     back-to-back, so offered load tracks service capacity;
//   - open-loop: -rate R issues requests on a fixed schedule regardless
//     of completions, the mode that actually exposes queueing collapse
//     and admission-control behavior under overload.
//
// Closed-loop workers speak persistent HTTP/1.1 with -keepalive: each
// worker holds one connection and issues up to -reqs requests on it
// (framing responses by Content-Length) before redialing, and the
// summary reports the reused-connection ratio actually achieved.
// Extra request headers (-header "X-Shard-Key: hot") steer the sharded
// fabric's sticky router, the lever for forcing load skew.
//
// Keep-alive workers can also pipeline: -pipeline K writes K requests
// back-to-back before reading the K framed responses, which is what
// makes the server's batched forward path (multi-push rings, batched
// dispatch) observable from a closed loop — without pipelining a worker
// never has more than one request in flight per connection.
//
// Two load-shape levers exercise the fabric's stealing and rebalancing:
// -skew F sends the sticky hot key (-skew-header) on fraction F of
// requests, concentrating that share on one shard while the rest spread
// by connection hash; -burst on:off gates all workers through an on/off
// duty cycle, producing arrival bursts shorter than any rebalance period.
//
// A third, additive mode targets the event-multiplexed front:
// -idle-conns N holds N mostly-idle keep-alive connections alongside
// whatever active load is configured, each sending one request every
// -idle-every to prove liveness.  Idle pings are counted separately
// (idle_sent / idle_ok / idle_drops) and excluded from the latency
// quantiles, so the active subset's p50/p99 measure the server's
// behavior with a large parked-connection population, not the pings
// themselves.  Dials ramp over -idle-ramp to avoid a SYN flood.
//
// A fourth, exclusive mode drives the pub/sub subsystem: -subscribers N
// holds N chunked streaming subscriptions (GET /subscribe?topic=) spread
// round-robin over -topics, while -publishers P post frames
// ("<tenant> <seq> <unixnano>") at -pub-rate per publisher, drawing each
// publish's tenant from the -tenants weight list (the -tenant-header
// header).  Publishers gate on every subscriber having received its
// "id:" frame, so the zero-loss ledger is sound: each acked publish
// (200) increments its topic's acked count, each subscriber counts the
// data frames it received, and a subscriber whose stream ends with the
// chunked terminator (a drain close) charges
// max(0, acked(topic) − delivered) to missing_acked — which a clean
// drain must leave at zero.  -sub-churn makes subscribers resubscribe on
// a cycle (alternating clean /unsubscribe and abrupt close) and excludes
// them from the ledger; delivery lag quantiles (publish stamp → receipt)
// and per-tenant breakdowns land in -json (BENCH_pubsub.json).
//
// Every response is classified (2xx / shed 503 / expired 504 / error),
// and -json writes the full summary machine-readably for benchmark
// archiving (BENCH_serve.json, BENCH_shard.json, BENCH_batch.json,
// BENCH_mux.json, BENCH_pubsub.json, BENCH_elastic.json).
//
// -bucket slices the run into fixed-width time buckets by completion
// timestamp, each with its own ok/shed/expired/error counts and p50/p99
// — the per-phase breakdown that correlates a client-observed dip with
// a server-side membership change (scale-up, drain-out) at a known
// offset.
//
// Usage:
//
//	mploadgen [-addr host:port] [-path /echo?msg=hi] [-conns N]
//	          [-keepalive] [-reqs N] [-pipeline K] [-header "K: V"]
//	          [-skew F] [-skew-header name] [-burst on:off]
//	          [-idle-conns N] [-idle-every d] [-idle-ramp d]
//	          [-subscribers N] [-publishers N] [-topics N]
//	          [-tenants "name:weight,..."] [-tenant-header name]
//	          [-pub-rate R] [-sub-churn d]
//	          [-rate req/s] [-duration d] [-timeout d] [-json out.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	status  int // 0 = dial/IO error (no HTTP status)
	latency time.Duration
	off     time.Duration // completion offset from run start, for -bucket
}

// Summary is the machine-readable report; field names are the JSON
// contract consumed by benchmark archives.
type Summary struct {
	Addr       string  `json:"addr"`
	Path       string  `json:"path"`
	Mode       string  `json:"mode"` // "closed" or "open"
	Conns      int     `json:"conns"`
	KeepAlive  bool    `json:"keepalive"`
	Pipeline   int     `json:"pipeline,omitempty"`     // requests in flight per conn
	RatePerSec float64 `json:"rate_per_sec,omitempty"` // offered, open-loop only
	DurationMS int64   `json:"duration_ms"`

	SkewHotFraction float64 `json:"skew_hot_fraction,omitempty"`
	SkewHotSent     int64   `json:"skew_hot_sent,omitempty"`
	BurstOnMS       int64   `json:"burst_on_ms,omitempty"`
	BurstOffMS      int64   `json:"burst_off_ms,omitempty"`

	// Idle-connection population (-idle-conns): peak connections held
	// open concurrently, liveness pings sent/answered, and connections
	// dropped (dial failure, ping failure, or server close).  Pings are
	// excluded from the latency quantiles.
	IdleConns int64 `json:"idle_conns,omitempty"` // requested
	IdleHeld  int64 `json:"idle_held,omitempty"`  // peak held concurrently
	IdleSent  int64 `json:"idle_sent,omitempty"`
	IdleOK    int64 `json:"idle_ok,omitempty"`
	IdleDrops int64 `json:"idle_drops,omitempty"`

	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`             // 2xx
	Shed        int64   `json:"shed"`           // 503
	Expired     int64   `json:"expired"`        // 504
	OtherHTTP   int64   `json:"other_http"`     // any other status
	Errors      int64   `json:"errors"`         // dial/IO failures
	ConnsDialed int64   `json:"conns_dialed"`   // TCP connections opened
	ReusedRatio float64 `json:"reused_ratio"`   // responses on an already-used conn / responses
	Throughput  float64 `json:"throughput_rps"` // OK responses per second

	// Keep-alive runs also report the server's write coalescing as seen
	// from the wire: how many socket reads it took to collect all framed
	// responses.  A server writing one response per syscall pins
	// responses_per_read near 1; batched rendering pushes it toward the
	// pipeline depth.
	SocketReads int64   `json:"socket_reads,omitempty"`
	RespPerRead float64 `json:"responses_per_read,omitempty"`

	LatencyMS struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		P999 float64 `json:"p999"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"` // over OK responses

	// Pub/sub mode: the publish ledger, delivery counts, and the
	// zero-loss assertion.  latency_ms above measures publish RTT (the
	// ack); delivery_lag_ms measures publish stamp → subscriber receipt.
	Topics         int                       `json:"topics,omitempty"`
	Publishers     int                       `json:"publishers,omitempty"`
	Subscribers    int                       `json:"subscribers,omitempty"`
	PubAcked       int64                     `json:"pub_acked,omitempty"`
	PubQuotaDenied int64                     `json:"pub_quota_denied,omitempty"`
	PubRejected    int64                     `json:"pub_rejected,omitempty"`
	Delivered      int64                     `json:"delivered,omitempty"`
	Heartbeats     int64                     `json:"heartbeats,omitempty"`
	SubCleanClosed int64                     `json:"sub_clean_closed,omitempty"`
	SubDrops       int64                     `json:"sub_drops,omitempty"`
	MissingAcked   int64                     `json:"missing_acked,omitempty"`
	DeliveryLagMS  *Quantiles                `json:"delivery_lag_ms,omitempty"`
	Tenants        map[string]*TenantSummary `json:"tenants,omitempty"`

	// -bucket: the run sliced into fixed-width time buckets (by response
	// completion time), so client-observed errors and latency can be
	// correlated with server-side phase boundaries — a scale-up, a
	// drain-out — by timestamp.
	BucketMS int64            `json:"bucket_ms,omitempty"`
	Buckets  []*BucketSummary `json:"buckets,omitempty"`
}

// BucketSummary is one -bucket wide slice of the run.
type BucketSummary struct {
	StartMS int64   `json:"start_ms"` // bucket start, offset from run start
	Reqs    int64   `json:"reqs"`     // responses + errors completing here
	OK      int64   `json:"ok"`
	Shed    int64   `json:"shed"`
	Expired int64   `json:"expired"`
	Other   int64   `json:"other_http"`
	Errors  int64   `json:"errors"`
	RPS     float64 `json:"rps"` // OK completions per second of bucket width
	P50     float64 `json:"p50_ms,omitempty"`
	P99     float64 `json:"p99_ms,omitempty"`
	P999    float64 `json:"p999_ms,omitempty"`
}

// Quantiles is a latency distribution in milliseconds.  P999 is the
// tail the fair-lock ablation flattens — p50/p90/p99 alone cannot show
// a bounded-wait claim.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// TenantSummary is one tenant's slice of a pub/sub run.
type TenantSummary struct {
	Acked       int64      `json:"acked"`
	QuotaDenied int64      `json:"quota_denied"`
	Rejected    int64      `json:"rejected"`
	Delivered   int64      `json:"delivered"`
	LagMS       *Quantiles `json:"lag_ms,omitempty"`
}

// newQuantiles summarizes sorted samples (nearest-rank).
func newQuantiles(sorted []float64) *Quantiles {
	if len(sorted) == 0 {
		return nil
	}
	return &Quantiles{
		P50:  quantile(sorted, 0.50),
		P90:  quantile(sorted, 0.90),
		P99:  quantile(sorted, 0.99),
		P999: quantile(sorted, 0.999),
		Max:  sorted[len(sorted)-1],
	}
}

// headerList collects repeated -header flags.
type headerList []string

func (h *headerList) String() string { return strings.Join(*h, "; ") }
func (h *headerList) Set(v string) error {
	if !strings.Contains(v, ":") {
		return fmt.Errorf("header %q is not of the form \"Name: value\"", v)
	}
	*h = append(*h, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "server address")
	path := flag.String("path", "/echo?msg=hi", "request path")
	conns := flag.Int("conns", 8, "closed-loop concurrent workers")
	keepalive := flag.Bool("keepalive", false, "closed-loop: reuse connections (persistent HTTP/1.1)")
	reqsPerConn := flag.Int("reqs", 100, "keep-alive: max requests per connection before redialing")
	rate := flag.Float64("rate", 0, "open-loop offered rate in req/s (0 = closed-loop)")
	duration := flag.Duration("duration", 5*time.Second, "test duration")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonPath := flag.String("json", "", "write the summary as JSON to this file")
	pipeline := flag.Int("pipeline", 1, "keep-alive: requests written back-to-back before reading responses")
	skew := flag.Float64("skew", 0, "fraction of requests carrying the sticky hot key (0 disables)")
	skewHeader := flag.String("skew-header", "X-Shard-Key", "routing header the hot key rides on")
	burst := flag.String("burst", "", "on/off duty cycle \"on:off\" (e.g. 200ms:300ms; empty disables)")
	idleConns := flag.Int("idle-conns", 0, "mostly-idle keep-alive connections to hold open alongside the active load")
	idleEvery := flag.Duration("idle-every", 10*time.Second, "idle connections: liveness ping interval")
	idleRamp := flag.Duration("idle-ramp", 5*time.Second, "idle connections: window the initial dials are spread over")
	subscribers := flag.Int("subscribers", 0, "pubsub: streaming subscriptions to hold (enables pub/sub mode)")
	publishers := flag.Int("publishers", 0, "pubsub: publisher workers (enables pub/sub mode)")
	topicN := flag.Int("topics", 1, "pubsub: topic count (t0..t{N-1}, round-robin)")
	tenants := flag.String("tenants", "", "pubsub: publish tenant weights \"name:w,name:w\" (empty = anonymous)")
	tenantHeader := flag.String("tenant-header", "X-Tenant", "pubsub: tenant-id request header")
	pubRate := flag.Float64("pub-rate", 0, "pubsub: publishes/sec per publisher (0 = back-to-back)")
	subChurn := flag.Duration("sub-churn", 0, "pubsub: resubscribe cycle; churning subscribers leave the zero-loss ledger (0 = hold)")
	subRamp := flag.Duration("sub-ramp", 2*time.Second, "pubsub: window the initial subscribes are spread over")
	bucket := flag.Duration("bucket", 0, "slice the run into fixed buckets of this width for a per-phase error/latency breakdown (0 disables)")
	var headers headerList
	flag.Var(&headers, "header", "extra request header \"Name: value\" (repeatable)")
	flag.Parse()

	if *pipeline < 1 {
		*pipeline = 1
	}
	var burstOn, burstOff time.Duration
	if *burst != "" {
		onS, offS, ok := strings.Cut(*burst, ":")
		var err1, err2 error
		burstOn, err1 = time.ParseDuration(onS)
		if ok {
			burstOff, err2 = time.ParseDuration(offS)
		}
		if !ok || err1 != nil || err2 != nil || burstOn <= 0 || burstOff < 0 {
			fmt.Fprintf(os.Stderr, "bad -burst %q: want \"on:off\" durations\n", *burst)
			os.Exit(2)
		}
	}

	var (
		mu      sync.Mutex
		results []result
		sent    atomic.Int64
		errs    atomic.Int64
		dialed  atomic.Int64
		reused  atomic.Int64
		hotSent atomic.Int64
		sreads  atomic.Int64

		idleSent  atomic.Int64
		idleOK    atomic.Int64
		idleDrops atomic.Int64
		idleHeld  atomic.Int64
		idlePeak  atomic.Int64
		idleReads atomic.Int64 // kept out of sreads so responses/read stays an active-load figure
	)
	begin := time.Now()
	// record logs one completion; status 0 marks a dial/IO error so the
	// bucket breakdown can place errors in time (errors are counted in
	// errs for the global summary, never as HTTP responses).
	record := func(st int, lat time.Duration) {
		off := time.Since(begin)
		mu.Lock()
		results = append(results, result{st, lat, off})
		mu.Unlock()
	}
	// reqHeaders decides one request's headers under -skew: with
	// probability skew the sticky hot key is attached (all hot requests
	// land on one shard); otherwise the base headers ride alone and the
	// request routes by connection hash.
	reqHeaders := func(rng *rand.Rand) []string {
		if *skew <= 0 || rng.Float64() >= *skew {
			return headers
		}
		hotSent.Add(1)
		return append(append([]string(nil), headers...), *skewHeader+": hot")
	}
	// burstWait blocks through the off phase of the duty cycle; all
	// workers share the phase (keyed to begin), so load arrives in
	// synchronized bursts.
	burstWait := func() {
		if burstOff <= 0 {
			return
		}
		cycle := burstOn + burstOff
		if e := time.Since(begin) % cycle; e >= burstOn {
			time.Sleep(cycle - e)
		}
	}
	one := func(rng *rand.Rand) {
		sent.Add(1)
		start := time.Now()
		dialed.Add(1)
		st, _, err := doReq(*addr, *path, reqHeaders(rng), *timeout)
		if err != nil {
			errs.Add(1)
			record(0, time.Since(start))
			return
		}
		record(st, time.Since(start))
	}

	stop := begin.Add(*duration)
	var wg sync.WaitGroup
	mode := "closed"
	// The idle population rides alongside any active mode: each holder
	// dials once (staggered over -idle-ramp), then sleeps between
	// liveness pings.  A ping error or non-2xx drops the connection; a
	// clean server-side Connection: close is redialed without counting
	// as a drop.
	for i := 0; i < *idleConns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(int64(*idleRamp) * int64(i) / int64(*idleConns)))
			var kc *kaClient
			defer func() {
				if kc != nil {
					kc.nc.Close()
				}
			}()
			var next time.Time
			for time.Now().Before(stop) {
				if kc == nil {
					c, err := net.DialTimeout("tcp", *addr, *timeout)
					if err != nil {
						idleDrops.Add(1)
						time.Sleep(250 * time.Millisecond)
						continue
					}
					kc = &kaClient{nc: c, reads: &idleReads}
					h := idleHeld.Add(1)
					for {
						p := idlePeak.Load()
						if h <= p || idlePeak.CompareAndSwap(p, h) {
							break
						}
					}
					// Ping immediately: a connection that never issues a
					// request is not keep-alive yet, and the server's
					// fresh-connection head deadline would 504 it.  The
					// idle budget only applies between requests.
					next = time.Now()
				}
				if now := time.Now(); now.Before(next) {
					d := next.Sub(now)
					if rem := stop.Sub(now); rem < d {
						d = rem
					}
					time.Sleep(d)
					continue
				}
				idleSent.Add(1)
				st := 0
				srvClose, err := kc.doN(*path, [][]string{headers}, *timeout, func(s int) { st = s })
				// Schedule from completion, not from the previous slot: an
				// absolute schedule turns one slow ping into a back-to-back
				// catch-up burst from every holder at once, and the
				// resulting retry storm keeps an overloaded server down.
				next = time.Now().Add(*idleEvery)
				if err != nil || st < 200 || st >= 300 {
					idleDrops.Add(1)
					kc.nc.Close()
					kc = nil
					idleHeld.Add(-1)
					time.Sleep(time.Second) // back off before the redial
					continue
				}
				idleOK.Add(1)
				if srvClose {
					kc.nc.Close()
					kc = nil
					idleHeld.Add(-1)
				}
			}
		}()
	}
	var ps *pubsubState
	if *subscribers > 0 || *publishers > 0 {
		mode = "pubsub"
		ps = newPubsubState(*topicN, *tenants, *subChurn > 0)
		cfg := pubsubConfig{
			addr: *addr, headers: headers, tenantHeader: *tenantHeader,
			timeout: *timeout, stop: stop, churn: *subChurn, ramp: *subRamp,
			pubRate: *pubRate,
		}
		// Publishers gate on the initial subscriber cohort being live (id
		// frame received), so every acked publish is owed to every ledger
		// subscriber.
		ready := &sync.WaitGroup{}
		ready.Add(*subscribers)
		for i := 0; i < *subscribers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				ps.subscriberLoop(cfg, i, *subscribers, ready)
			}()
		}
		for i := 0; i < *publishers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				ps.publisherLoop(cfg, i, ready, record, &sent, &errs, &dialed)
			}()
		}
	} else if *rate > 0 {
		mode = "open"
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		// Open loop: a ticker schedules sends independent of completions.
		interval := time.Duration(float64(time.Second) / *rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for time.Now().Before(stop) {
			<-tick.C
			burstWait()
			hdrs := reqHeaders(rng)
			wg.Add(1)
			go func() {
				defer wg.Done()
				sent.Add(1)
				start := time.Now()
				dialed.Add(1)
				st, _, err := doReq(*addr, *path, hdrs, *timeout)
				if err != nil {
					errs.Add(1)
					record(0, time.Since(start))
					return
				}
				record(st, time.Since(start))
			}()
		}
	} else if *keepalive || *pipeline > 1 {
		for i := 0; i < *conns; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i)*7919 + time.Now().UnixNano()))
				var kc *kaClient
				onConn := 0
				perReq := make([][]string, 0, *pipeline)
				for time.Now().Before(stop) {
					burstWait()
					if kc == nil {
						c, err := net.DialTimeout("tcp", *addr, *timeout)
						if err != nil {
							errs.Add(1)
							sent.Add(1)
							record(0, 0)
							continue
						}
						kc = &kaClient{nc: c, reads: &sreads}
						dialed.Add(1)
						onConn = 0
					}
					depth := *pipeline
					if left := *reqsPerConn - onConn; depth > left {
						depth = left
					}
					if depth < 1 {
						depth = 1
					}
					perReq = perReq[:0]
					for j := 0; j < depth; j++ {
						perReq = append(perReq, reqHeaders(rng))
					}
					sent.Add(int64(depth))
					start := time.Now()
					got := 0
					close, err := kc.doN(*path, perReq, *timeout, func(st int) {
						record(st, time.Since(start))
						if onConn > 0 {
							reused.Add(1)
						}
						onConn++
						got++
					})
					if err != nil {
						errs.Add(int64(depth - got))
						for j := got; j < depth; j++ {
							record(0, time.Since(start))
						}
						kc.nc.Close()
						kc = nil
						continue
					}
					if close || onConn >= *reqsPerConn {
						kc.nc.Close()
						kc = nil
					}
				}
				if kc != nil {
					kc.nc.Close()
				}
			}()
		}
	} else {
		for i := 0; i < *conns; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i)*6121 + time.Now().UnixNano()))
				for time.Now().Before(stop) {
					burstWait()
					one(rng)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	s := Summary{
		Addr:            *addr,
		Path:            *path,
		Mode:            mode,
		Conns:           *conns,
		KeepAlive:       mode == "closed" && (*keepalive || *pipeline > 1),
		DurationMS:      elapsed.Milliseconds(),
		Sent:            sent.Load(),
		Errors:          errs.Load(),
		ConnsDialed:     dialed.Load(),
		SkewHotFraction: *skew,
		SkewHotSent:     hotSent.Load(),
		BurstOnMS:       burstOn.Milliseconds(),
		BurstOffMS:      burstOff.Milliseconds(),
		IdleConns:       int64(*idleConns),
		IdleHeld:        idlePeak.Load(),
		IdleSent:        idleSent.Load(),
		IdleOK:          idleOK.Load(),
		IdleDrops:       idleDrops.Load(),
	}
	if s.KeepAlive && *pipeline > 1 {
		s.Pipeline = *pipeline
	}
	if mode == "open" {
		s.RatePerSec = *rate
	}
	var okLats []float64
	var errRecords int64
	for _, r := range results {
		switch {
		case r.status == 0:
			errRecords++ // already counted in Errors; placed here for buckets
		case r.status >= 200 && r.status < 300:
			s.OK++
			okLats = append(okLats, float64(r.latency.Microseconds())/1000)
		case r.status == 503:
			s.Shed++
		case r.status == 504:
			s.Expired++
		default:
			s.OtherHTTP++
		}
	}
	if responses := int64(len(results)) - errRecords; responses > 0 {
		s.ReusedRatio = float64(reused.Load()) / float64(responses)
		if s.KeepAlive {
			s.SocketReads = sreads.Load()
			if s.SocketReads > 0 {
				s.RespPerRead = float64(responses) / float64(s.SocketReads)
			}
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		s.Throughput = float64(s.OK) / secs
	}
	sort.Float64s(okLats)
	s.LatencyMS.P50 = quantile(okLats, 0.50)
	s.LatencyMS.P90 = quantile(okLats, 0.90)
	s.LatencyMS.P99 = quantile(okLats, 0.99)
	s.LatencyMS.P999 = quantile(okLats, 0.999)
	if n := len(okLats); n > 0 {
		s.LatencyMS.Max = okLats[n-1]
	}
	if *bucket > 0 {
		s.BucketMS = bucket.Milliseconds()
		nb := int(elapsed / *bucket)
		if time.Duration(nb)*(*bucket) < elapsed {
			nb++
		}
		if nb < 1 {
			nb = 1
		}
		s.Buckets = make([]*BucketSummary, nb)
		lats := make([][]float64, nb)
		for i := range s.Buckets {
			s.Buckets[i] = &BucketSummary{StartMS: (time.Duration(i) * *bucket).Milliseconds()}
		}
		for _, r := range results {
			i := int(r.off / *bucket)
			if i < 0 {
				i = 0
			}
			if i >= nb {
				i = nb - 1
			}
			b := s.Buckets[i]
			b.Reqs++
			switch {
			case r.status == 0:
				b.Errors++
			case r.status >= 200 && r.status < 300:
				b.OK++
				lats[i] = append(lats[i], float64(r.latency.Microseconds())/1000)
			case r.status == 503:
				b.Shed++
			case r.status == 504:
				b.Expired++
			default:
				b.Other++
			}
		}
		for i, b := range s.Buckets {
			sort.Float64s(lats[i])
			if n := len(lats[i]); n > 0 {
				b.P50 = quantile(lats[i], 0.50)
				b.P99 = quantile(lats[i], 0.99)
				b.P999 = quantile(lats[i], 0.999)
			}
			b.RPS = float64(b.OK) / bucket.Seconds()
		}
	}
	if ps != nil {
		s.Topics = *topicN
		s.Publishers = *publishers
		s.Subscribers = *subscribers
		for i := range ps.acked {
			s.PubAcked += ps.acked[i].Load()
		}
		s.PubQuotaDenied = ps.denied.Load()
		s.PubRejected = ps.rejected.Load()
		s.Delivered = ps.delivered.Load()
		s.Heartbeats = ps.heartbeats.Load()
		s.SubCleanClosed = ps.cleanClosed.Load()
		s.SubDrops = ps.subDrops.Load()
		s.MissingAcked = ps.missing.Load()
		ps.mu.Lock()
		lags := append([]float64(nil), ps.lags...)
		ps.mu.Unlock()
		sort.Float64s(lags)
		s.DeliveryLagMS = newQuantiles(lags)
		if len(ps.aggs) > 0 {
			s.Tenants = make(map[string]*TenantSummary, len(ps.aggs))
			for name, a := range ps.aggs {
				a.mu.Lock()
				tl := append([]float64(nil), a.lags...)
				a.mu.Unlock()
				sort.Float64s(tl)
				s.Tenants[name] = &TenantSummary{
					Acked:       a.acked.Load(),
					QuotaDenied: a.denied.Load(),
					Rejected:    a.rejected.Load(),
					Delivered:   a.delivered.Load(),
					LagMS:       newQuantiles(tl),
				}
			}
		}
	}

	fmt.Printf("%s %s (%s-loop", s.Addr, s.Path, s.Mode)
	if mode == "open" {
		fmt.Printf(", %.0f req/s offered", *rate)
	} else {
		fmt.Printf(", %d conns", *conns)
		if s.KeepAlive {
			fmt.Printf(", keep-alive")
		}
		if s.Pipeline > 1 {
			fmt.Printf(", pipeline %d", s.Pipeline)
		}
	}
	if *skew > 0 {
		fmt.Printf(", skew %.2f", *skew)
	}
	if burstOff > 0 {
		fmt.Printf(", burst %s:%s", burstOn, burstOff)
	}
	fmt.Printf(") over %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  sent %d: ok %d, shed %d, expired %d, other %d, errors %d\n",
		s.Sent, s.OK, s.Shed, s.Expired, s.OtherHTTP, s.Errors)
	if s.KeepAlive {
		fmt.Printf("  conns dialed %d, reused-conn ratio %.3f\n", s.ConnsDialed, s.ReusedRatio)
		if s.SocketReads > 0 {
			fmt.Printf("  socket reads %d, responses/read %.2f\n", s.SocketReads, s.RespPerRead)
		}
	}
	if s.IdleConns > 0 {
		fmt.Printf("  idle conns %d: peak held %d, pings %d ok %d, drops %d\n",
			s.IdleConns, s.IdleHeld, s.IdleSent, s.IdleOK, s.IdleDrops)
	}
	if ps != nil {
		fmt.Printf("  pubsub: topics %d publishers %d subscribers %d\n",
			s.Topics, s.Publishers, s.Subscribers)
		fmt.Printf("  publish acked %d quota-denied %d rejected %d\n",
			s.PubAcked, s.PubQuotaDenied, s.PubRejected)
		fmt.Printf("  delivered %d heartbeats %d clean-closed %d drops %d missing-acked %d\n",
			s.Delivered, s.Heartbeats, s.SubCleanClosed, s.SubDrops, s.MissingAcked)
		if s.DeliveryLagMS != nil {
			fmt.Printf("  delivery lag ms p50 %.2f p90 %.2f p99 %.2f p99.9 %.2f max %.2f\n",
				s.DeliveryLagMS.P50, s.DeliveryLagMS.P90, s.DeliveryLagMS.P99,
				s.DeliveryLagMS.P999, s.DeliveryLagMS.Max)
		}
		for name, t := range s.Tenants {
			fmt.Printf("  tenant %s: acked %d denied %d delivered %d",
				name, t.Acked, t.QuotaDenied, t.Delivered)
			if t.LagMS != nil {
				fmt.Printf(" lag p50 %.2f p99 %.2f", t.LagMS.P50, t.LagMS.P99)
			}
			fmt.Println()
		}
	}
	fmt.Printf("  throughput %.1f req/s  latency ms p50 %.2f p90 %.2f p99 %.2f p99.9 %.2f max %.2f\n",
		s.Throughput, s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99,
		s.LatencyMS.P999, s.LatencyMS.Max)
	for _, b := range s.Buckets {
		fmt.Printf("  [%6dms] reqs %5d ok %5d shed %4d expired %3d other %3d errors %3d  %.0f req/s p50 %.2f p99 %.2f p99.9 %.2f\n",
			b.StartMS, b.Reqs, b.OK, b.Shed, b.Expired, b.Other, b.Errors, b.RPS, b.P50, b.P99, b.P999)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// quantile returns the q-th quantile of sorted xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}

// kaClient is one persistent connection, framing responses by
// Content-Length so the connection survives across requests.
type kaClient struct {
	nc    net.Conn
	acc   []byte
	reads *atomic.Int64 // data-bearing socket reads, for responses/read
}

// doN issues len(perReq) pipelined requests in a single write — the
// per-request headers come from perReq — then reads that many framed
// responses in order, invoking got for each.  It returns whether the
// server asked to close the connection (a Connection: close on any
// response ends the read loop: nothing after it will be answered).
func (k *kaClient) doN(path string, perReq [][]string, timeout time.Duration, got func(status int)) (bool, error) {
	k.nc.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	for _, hdrs := range perReq {
		fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: loadgen\r\nContent-Length: 0\r\n", path)
		for _, h := range hdrs {
			b.WriteString(h + "\r\n")
		}
		b.WriteString("\r\n")
	}
	if _, err := k.nc.Write(b.Bytes()); err != nil {
		return false, err
	}
	for range perReq {
		status, close, err := k.readResp()
		if err != nil {
			return false, err
		}
		got(status)
		if close {
			return true, nil
		}
	}
	return false, nil
}

// readResp reads one Content-Length-framed response off the connection,
// returning its status and whether it carried Connection: close.
func (k *kaClient) readResp() (int, bool, error) {
	buf := make([]byte, 4096)
	for {
		if head, rest, ok := bytes.Cut(k.acc, []byte("\r\n\r\n")); ok {
			lines := strings.Split(string(head), "\r\n")
			parts := strings.SplitN(lines[0], " ", 3)
			if len(parts) < 2 {
				return 0, false, fmt.Errorf("bad status line %q", lines[0])
			}
			status, err := strconv.Atoi(parts[1])
			if err != nil {
				return 0, false, err
			}
			clen, close := -1, false
			for _, ln := range lines[1:] {
				kk, v, ok := strings.Cut(ln, ":")
				if !ok {
					continue
				}
				switch strings.ToLower(strings.TrimSpace(kk)) {
				case "content-length":
					clen, err = strconv.Atoi(strings.TrimSpace(v))
					if err != nil {
						return 0, false, err
					}
				case "connection":
					close = strings.EqualFold(strings.TrimSpace(v), "close")
				}
			}
			if clen < 0 {
				return 0, false, fmt.Errorf("no Content-Length in %q", head)
			}
			for len(rest) < clen {
				n, err := k.nc.Read(buf)
				if n > 0 {
					k.reads.Add(1)
					rest = append(rest, buf[:n]...)
				} else if err != nil {
					return 0, false, err
				}
			}
			k.acc = append([]byte(nil), rest[clen:]...)
			return status, close, nil
		}
		n, err := k.nc.Read(buf)
		if n > 0 {
			k.reads.Add(1)
			k.acc = append(k.acc, buf[:n]...)
		} else if err != nil {
			return 0, false, err
		}
	}
}

// ------------------------------------------------------------- pub/sub

// pubsubConfig is the shared wiring every pub/sub worker needs.
type pubsubConfig struct {
	addr         string
	headers      headerList
	tenantHeader string
	timeout      time.Duration
	stop         time.Time
	churn        time.Duration
	ramp         time.Duration
	pubRate      float64
}

// tenantAgg is one tenant's slice of the run's counters and lag samples.
type tenantAgg struct {
	acked     atomic.Int64
	denied    atomic.Int64
	rejected  atomic.Int64
	delivered atomic.Int64
	mu        sync.Mutex
	lags      []float64
}

// tenantWeight is one -tenants entry with its cumulative draw weight.
type tenantWeight struct {
	name string
	cum  float64
}

// pubsubState is the run-wide pub/sub ledger: per-topic acked counts
// (the zero-loss baseline), delivery counters, lag samples, and the
// per-tenant breakdown.
type pubsubState struct {
	topics  []string
	acked   []atomic.Int64 // per topic: publishes the server acked with 200
	weights []tenantWeight
	aggs    map[string]*tenantAgg
	churn   bool // churning subscribers stay out of the missing-acked ledger

	denied      atomic.Int64
	rejected    atomic.Int64
	delivered   atomic.Int64
	heartbeats  atomic.Int64
	cleanClosed atomic.Int64
	subDrops    atomic.Int64
	missing     atomic.Int64

	mu   sync.Mutex
	lags []float64
}

func newPubsubState(topics int, tenants string, churn bool) *pubsubState {
	if topics < 1 {
		topics = 1
	}
	ps := &pubsubState{
		topics: make([]string, topics),
		acked:  make([]atomic.Int64, topics),
		aggs:   map[string]*tenantAgg{},
		churn:  churn,
	}
	for i := range ps.topics {
		ps.topics[i] = fmt.Sprintf("t%d", i)
	}
	cum := 0.0
	if tenants != "" {
		for _, ent := range strings.Split(tenants, ",") {
			name, ws, _ := strings.Cut(strings.TrimSpace(ent), ":")
			w := 1.0
			if ws != "" {
				if v, err := strconv.ParseFloat(ws, 64); err == nil && v > 0 {
					w = v
				}
			}
			cum += w
			ps.weights = append(ps.weights, tenantWeight{name: name, cum: cum})
			ps.aggs[name] = &tenantAgg{}
		}
	}
	return ps
}

// drawTenant picks a publish's tenant by weight; "" means anonymous.
func (ps *pubsubState) drawTenant(rng *rand.Rand) string {
	if len(ps.weights) == 0 {
		return ""
	}
	x := rng.Float64() * ps.weights[len(ps.weights)-1].cum
	for _, w := range ps.weights {
		if x < w.cum {
			return w.name
		}
	}
	return ps.weights[len(ps.weights)-1].name
}

// agg returns the tenant's aggregate, creating one for tenants first
// seen in a delivered frame (another process's publishers).
func (ps *pubsubState) agg(name string) *tenantAgg {
	ps.mu.Lock()
	a := ps.aggs[name]
	if a == nil {
		a = &tenantAgg{}
		ps.aggs[name] = a
	}
	ps.mu.Unlock()
	return a
}

// subscriberLoop holds one streaming subscription (resubscribing on
// churn or failure) until the run ends or the server's drain close.
func (ps *pubsubState) subscriberLoop(cfg pubsubConfig, i, total int, ready *sync.WaitGroup) {
	if total > 0 && cfg.ramp > 0 {
		time.Sleep(time.Duration(int64(cfg.ramp) * int64(i) / int64(total)))
	}
	var once sync.Once
	onReady := func() { once.Do(ready.Done) }
	defer onReady() // never leave publishers gated on a dead subscriber
	rng := rand.New(rand.NewSource(int64(i)*9973 + time.Now().UnixNano()))
	topicIdx := i % len(ps.topics)
	iter := 0
	for time.Now().Before(cfg.stop) {
		drained := ps.subscribeOnce(cfg, topicIdx, rng, onReady, iter)
		if drained {
			return // server drain closed the stream; nothing will reopen
		}
		iter++
		if !time.Now().Before(cfg.stop) {
			return
		}
		time.Sleep(100 * time.Millisecond) // back off before resubscribing
	}
}

// subscribeOnce runs one subscription to its end.  It returns true when
// the stream ended with the chunked terminator and the subscriber should
// not resubscribe (server drain), false to try again (errors, churn).
// Ledger accounting (missing-acked) happens only for non-churning
// subscribers on a terminator close: every publish acked before the
// close must have been delivered.
func (ps *pubsubState) subscribeOnce(cfg pubsubConfig, topicIdx int, rng *rand.Rand, onReady func(), iter int) bool {
	topic := ps.topics[topicIdx]
	nc, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
	if err != nil {
		ps.subDrops.Add(1)
		return false
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(cfg.timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET /subscribe?topic=%s HTTP/1.1\r\nHost: loadgen\r\nContent-Length: 0\r\n", topic)
	for _, h := range cfg.headers {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := nc.Write(b.Bytes()); err != nil {
		ps.subDrops.Add(1)
		return false
	}
	br := bufio.NewReader(nc)
	status, chunked, err := readStreamHead(br)
	if err != nil || status != 200 || !chunked {
		if status == 503 {
			return true // draining: resubscribing would only spin on 503s
		}
		ps.subDrops.Add(1)
		return false
	}
	var lifeEnd time.Time
	if cfg.churn > 0 {
		life := cfg.churn/2 + time.Duration(rng.Int63n(int64(cfg.churn)))
		lifeEnd = time.Now().Add(life)
	}
	subID := ""
	unsubbed := false
	delivered := int64(0)
	for {
		now := time.Now()
		if !now.Before(cfg.stop) {
			return true // run over; this close is ours — no ledger check
		}
		rd := now.Add(cfg.timeout)
		if grace := cfg.stop.Add(100 * time.Millisecond); grace.Before(rd) {
			rd = grace
		}
		nc.SetReadDeadline(rd)
		frame, term, err := readChunk(br)
		if err != nil {
			if !time.Now().Before(cfg.stop) {
				return true // run over; the close is ours, not a drop
			}
			ps.subDrops.Add(1)
			return false
		}
		if term {
			ps.cleanClosed.Add(1)
			if !ps.churn {
				// The zero-loss assertion: everything acked to this topic
				// before the stream's clean close must be in our count.
				if miss := ps.acked[topicIdx].Load() - delivered; miss > 0 {
					ps.missing.Add(miss)
				}
			}
			return !unsubbed // an unsubscribe close is churn, not drain
		}
		s := string(frame)
		switch {
		case strings.HasPrefix(s, "id:"):
			subID = s[3:]
			onReady()
		case s == "\n":
			ps.heartbeats.Add(1)
		default:
			delivered++
			ps.delivered.Add(1)
			if f := strings.Fields(s); len(f) == 3 {
				if nano, err := strconv.ParseInt(f[2], 10, 64); err == nil {
					lag := float64(time.Now().UnixNano()-nano) / 1e6
					ps.mu.Lock()
					ps.lags = append(ps.lags, lag)
					ps.mu.Unlock()
					a := ps.agg(f[0])
					a.delivered.Add(1)
					a.mu.Lock()
					a.lags = append(a.lags, lag)
					a.mu.Unlock()
				}
			}
		}
		if cfg.churn > 0 && !unsubbed && time.Now().After(lifeEnd) {
			if iter%2 == 1 || subID == "" {
				return false // abrupt churn: just close
			}
			// Clean churn: unsubscribe out of band, then drain this stream
			// to its terminator.
			doPostOnce(cfg.addr, "/unsubscribe?topic="+topic+"&id="+subID,
				cfg.headers, cfg.timeout)
			unsubbed = true
		}
	}
}

// publisherLoop posts frames at the configured pace, drawing a tenant
// per publish, keeping the connection alive, and feeding the ledger.
func (ps *pubsubState) publisherLoop(cfg pubsubConfig, i int, ready *sync.WaitGroup,
	record func(int, time.Duration), sent, errs, dialed *atomic.Int64) {
	ready.Wait()
	rng := rand.New(rand.NewSource(int64(i)*7717 + time.Now().UnixNano()))
	var interval time.Duration
	if cfg.pubRate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.pubRate)
	}
	next := time.Now()
	var kc *kaClient
	var fake atomic.Int64 // publish reads don't belong in responses/read
	defer func() {
		if kc != nil {
			kc.nc.Close()
		}
	}()
	seq := 0
	consecDrain := 0
	for time.Now().Before(cfg.stop) {
		if interval > 0 {
			if now := time.Now(); now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
		}
		if consecDrain >= 100 {
			return // the server is draining or gone; stop hammering it
		}
		topicIdx := seq % len(ps.topics)
		tenant := ps.drawTenant(rng)
		name := tenant
		if name == "" {
			name = "anon"
		}
		body := fmt.Sprintf("%s %d %d", name, seq, time.Now().UnixNano())
		if kc == nil {
			c, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
			if err != nil {
				errs.Add(1)
				record(0, 0)
				consecDrain++
				time.Sleep(100 * time.Millisecond)
				continue
			}
			kc = &kaClient{nc: c, reads: &fake}
			dialed.Add(1)
		}
		hdrs := cfg.headers
		if tenant != "" {
			hdrs = append(append(headerList(nil), cfg.headers...),
				cfg.tenantHeader+": "+tenant)
		}
		sent.Add(1)
		start := time.Now()
		st, srvClose, err := kc.doBody("POST", "/publish?topic="+ps.topics[topicIdx], hdrs, body, cfg.timeout)
		if err != nil {
			errs.Add(1)
			record(0, time.Since(start))
			kc.nc.Close()
			kc = nil
			continue
		}
		record(st, time.Since(start))
		switch st {
		case 200:
			ps.acked[topicIdx].Add(1)
			consecDrain = 0
			ps.agg(name).acked.Add(1)
		case 429:
			ps.denied.Add(1)
			consecDrain = 0
			ps.agg(name).denied.Add(1)
		case 503:
			ps.rejected.Add(1)
			consecDrain++
			ps.agg(name).rejected.Add(1)
		}
		if srvClose {
			kc.nc.Close()
			kc = nil
		}
		seq++
	}
}

// doBody issues one request with a body on the persistent connection
// and reads its framed response.
func (k *kaClient) doBody(method, path string, hdrs []string, body string, timeout time.Duration) (int, bool, error) {
	k.nc.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: loadgen\r\nContent-Length: %d\r\n", method, path, len(body))
	for _, h := range hdrs {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	b.WriteString(body)
	if _, err := k.nc.Write(b.Bytes()); err != nil {
		return 0, false, err
	}
	return k.readResp()
}

// readStreamHead parses a response's status line and headers, reporting
// whether the body is chunked (a live stream).
func readStreamHead(br *bufio.Reader) (status int, chunked bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, false, err
	}
	parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
	if len(parts) < 2 {
		return 0, false, fmt.Errorf("bad status line %q", line)
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, false, err
	}
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, false, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return status, chunked, nil
		}
		if k, v, ok := strings.Cut(h, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(k), "transfer-encoding") &&
			strings.Contains(strings.ToLower(v), "chunked") {
			chunked = true
		}
	}
}

// readChunk reads one chunked-encoding frame; term reports the
// zero-length terminator (clean end of stream).
func readChunk(br *bufio.Reader) (frame []byte, term bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
	if err != nil || size < 0 {
		return nil, false, fmt.Errorf("bad chunk size %q", line)
	}
	if size == 0 {
		br.ReadString('\n') // trailing CRLF; the conn closes after
		return nil, true, nil
	}
	buf := make([]byte, size+2) // frame + CRLF
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, false, err
	}
	return buf[:size], false, nil
}

// doPostOnce issues one POST on a one-shot connection, ignoring the
// response body (used for out-of-band /unsubscribe).
func doPostOnce(addr, path string, hdrs []string, timeout time.Duration) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: 0\r\n", path)
	for _, h := range hdrs {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := conn.Write(b.Bytes()); err != nil {
		return
	}
	io.Copy(io.Discard, conn)
}

// doReq issues one GET with Connection: close and returns the status.
func doReq(addr, path string, headers []string, timeout time.Duration) (int, bool, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, false, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n", path)
	for _, h := range headers {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := conn.Write(b.Bytes()); err != nil {
		return 0, false, err
	}
	raw, err := io.ReadAll(conn)
	if err != nil && len(raw) == 0 {
		return 0, false, err
	}
	line, _, ok := bytes.Cut(raw, []byte("\r\n"))
	if !ok {
		return 0, false, fmt.Errorf("no status line in %q", raw)
	}
	parts := strings.SplitN(string(line), " ", 3)
	if len(parts) < 2 {
		return 0, false, fmt.Errorf("bad status line %q", line)
	}
	st, err := strconv.Atoi(parts[1])
	return st, true, err
}
